// Tests for the CK-means fast path (clustering/ckmeans.h): reduction and
// bound pruning must reproduce the direct UK-means sweeps bit-for-bit on
// every moment backend, the maintained bounds must actually bound, the
// evaluation counters must satisfy their accounting contract, and the
// file-backed mini-batch driver must match the fully ingested run for any
// batch size.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "clustering/ckmeans.h"
#include "clustering/registry.h"
#include "clustering/ukmeans.h"
#include "common/math_utils.h"
#include "data/benchmark_gen.h"
#include "data/synthetic_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "io/ingest.h"
#include "io/moment_file.h"

namespace uclust::clustering {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

std::string TempPath(const std::string& file) {
  return ::testing::TempDir() + file;
}

data::UncertainDataset TestDataset(std::size_t n, std::size_t m, int classes,
                                   uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = m;
  params.classes = classes;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(params, seed, "ckmeans");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

engine::Engine EngineWith(int threads, std::size_t budget = 0) {
  engine::EngineConfig config;
  config.num_threads = threads;
  config.block_size = 128;
  config.memory_budget_bytes = budget;
  return engine::Engine(config);
}

// ---------------------------------------------------------------------------
// Reduction layer.

TEST(CkmeansReduction, CopiesMeansAndConstantsExactly) {
  const auto ds = TestDataset(200, 4, 3, 21);
  const auto mm = ds.moments().view();
  const ReducedMoments red = CkmeansReduce(EngineWith(4), mm);
  ASSERT_EQ(red.n, mm.size());
  ASSERT_EQ(red.m, mm.dims());
  const auto view = red.view();
  for (std::size_t i = 0; i < red.n; ++i) {
    const auto a = mm.mean(i);
    const auto b = view.mean(i);
    ASSERT_EQ(std::vector<double>(a.begin(), a.end()),
              std::vector<double>(b.begin(), b.end())) << "object " << i;
    ASSERT_EQ(mm.total_variance(i), view.total_variance(i)) << "object " << i;
  }
}

TEST(CkmeansReduction, MatchesDirectOnChunkedMappedBackend) {
  // Write the moments into a .umom with tiny chunks, reopen through the
  // Mapped backend, and check both the reduction copy and the clustering
  // outcome are bit-identical to the flat view.
  const auto ds = TestDataset(300, 4, 4, 23);
  const auto flat = ds.moments().view();
  const std::string sidecar = TempPath("ckmeans_chunked.umom");
  ASSERT_TRUE(io::WriteMomentFile(flat, sidecar, /*chunk_rows=*/8).ok());
  auto store = io::MappedMomentStore::Open(sidecar);
  ASSERT_TRUE(store.ok());
  const auto mapped = store.ValueOrDie()->view();

  const auto direct = Ukmeans::RunOnMoments(flat, 4, 5, Ukmeans::Params(),
                                            EngineWith(1));
  for (int threads : kThreadCounts) {
    CkMeans::Params p;  // reduction + bounds on
    const auto out =
        CkMeans::RunOnMoments(mapped, 4, 5, p, EngineWith(threads));
    EXPECT_EQ(out.labels, direct.labels) << "threads=" << threads;
    EXPECT_EQ(out.objective, direct.objective) << "threads=" << threads;
    EXPECT_EQ(out.iterations, direct.iterations) << "threads=" << threads;
  }
  std::remove(sidecar.c_str());
}

// ---------------------------------------------------------------------------
// Bit-identity of the knob matrix against the direct reference.

TEST(Ckmeans, EveryKnobComboMatchesDirectPath) {
  const auto ds = TestDataset(500, 3, 4, 25);
  const auto mm = ds.moments().view();
  const auto direct =
      Ukmeans::RunOnMoments(mm, 4, 9, Ukmeans::Params(), EngineWith(1));
  for (const bool reduction : {false, true}) {
    for (const bool bounds : {false, true}) {
      for (int threads : kThreadCounts) {
        CkMeans::Params p;
        p.reduction = reduction;
        p.bound_pruning = bounds;
        const auto out =
            CkMeans::RunOnMoments(mm, 4, 9, p, EngineWith(threads));
        EXPECT_EQ(out.labels, direct.labels)
            << "reduction=" << reduction << " bounds=" << bounds
            << " threads=" << threads;
        EXPECT_EQ(out.objective, direct.objective)
            << "reduction=" << reduction << " bounds=" << bounds
            << " threads=" << threads;
        EXPECT_EQ(out.iterations, direct.iterations)
            << "reduction=" << reduction << " bounds=" << bounds
            << " threads=" << threads;
      }
    }
  }
}

TEST(Ckmeans, PlusPlusSeedingMatchesDirectPath) {
  const auto ds = TestDataset(400, 3, 4, 27);
  const auto mm = ds.moments().view();
  Ukmeans::Params dp;
  dp.init = InitStrategy::kPlusPlus;
  const auto direct = Ukmeans::RunOnMoments(mm, 4, 11, dp, EngineWith(1));
  for (const bool reduction : {false, true}) {
    CkMeans::Params p;
    p.init = InitStrategy::kPlusPlus;
    p.reduction = reduction;
    const auto out = CkMeans::RunOnMoments(mm, 4, 11, p, EngineWith(2));
    EXPECT_EQ(out.labels, direct.labels) << "reduction=" << reduction;
    EXPECT_EQ(out.objective, direct.objective) << "reduction=" << reduction;
    EXPECT_EQ(out.iterations, direct.iterations) << "reduction=" << reduction;
  }
}

// ---------------------------------------------------------------------------
// Bound invariants and counter accounting.

TEST(Ckmeans, MaintainedBoundsActuallyBound) {
  const auto ds = TestDataset(300, 3, 4, 29);
  const auto mm = ds.moments().view();
  int audits = 0;
  CkMeans::Params p;
  p.bound_audit = [&](int iteration, std::span<const double> centroids,
                      std::span<const int> labels,
                      std::span<const double> upper,
                      std::span<const double> lower) {
    ASSERT_FALSE(upper.empty());
    ASSERT_FALSE(lower.empty());
    const std::size_t m = mm.dims();
    const int k = static_cast<int>(centroids.size() / m);
    for (std::size_t i = 0; i < mm.size(); ++i) {
      const auto mean = mm.mean(i);
      double assigned = 0.0;
      double min_other = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = std::sqrt(common::SquaredDistance(
            mean, std::span<const double>(centroids.data() + c * m, m)));
        if (c == labels[i]) {
          assigned = d;
        } else {
          min_other = std::min(min_other, d);
        }
      }
      // The loosened bounds must still bracket the true distances (the
      // 1e-9 headroom only covers this test's own recomputation error).
      ASSERT_GE(upper[i], assigned - 1e-9)
          << "iter " << iteration << " object " << i;
      ASSERT_LE(lower[i], min_other + 1e-9)
          << "iter " << iteration << " object " << i;
    }
    ++audits;
  };
  (void)CkMeans::RunOnMoments(mm, 4, 13, p, EngineWith(2));
  EXPECT_GT(audits, 0);
}

TEST(Ckmeans, CountersSatisfyAccountingContract) {
  const auto ds = TestDataset(600, 3, 5, 31);
  const auto mm = ds.moments().view();
  const int64_t n = static_cast<int64_t>(mm.size());
  const int k = 5;

  // Sweeps actually run: iterations + 1 on a converged run (the final
  // no-change sweep executes before the loop breaks), iterations at the cap.
  const auto expected_slots = [&](int iterations, int max_iters) {
    const int sweeps = iterations < max_iters ? iterations + 1 : iterations;
    return static_cast<int64_t>(sweeps) * n * k;
  };

  CkMeans::Params off;
  off.bound_pruning = false;
  const auto unbounded = CkMeans::RunOnMoments(mm, k, 15, off, EngineWith(2));
  EXPECT_EQ(unbounded.center_distance_evals,
            expected_slots(unbounded.iterations, off.max_iters));
  EXPECT_EQ(unbounded.bounds_skipped, 0);

  CkMeans::Params on;
  const auto bounded = CkMeans::RunOnMoments(mm, k, 15, on, EngineWith(2));
  EXPECT_EQ(bounded.center_distance_evals + bounded.bounds_skipped,
            expected_slots(bounded.iterations, on.max_iters));
  EXPECT_LT(bounded.center_distance_evals, unbounded.center_distance_evals);
  EXPECT_GT(bounded.bounds_skipped, 0);

  // Direct reference: counts every pair every sweep.
  const auto direct =
      Ukmeans::RunOnMoments(mm, k, 15, Ukmeans::Params(), EngineWith(2));
  EXPECT_EQ(direct.center_distance_evals,
            expected_slots(direct.iterations, Ukmeans::Params().max_iters));
  // The bounded run's total accounts for exactly the direct run's slots.
  EXPECT_EQ(bounded.center_distance_evals + bounded.bounds_skipped,
            direct.center_distance_evals);
}

TEST(Ckmeans, CountersMonotoneInIterationCap) {
  const auto ds = TestDataset(400, 3, 4, 33);
  const auto mm = ds.moments().view();
  int64_t prev_evals = 0;
  int64_t prev_total = 0;
  for (const int cap : {1, 2, 4, 8}) {
    CkMeans::Params p;
    p.max_iters = cap;
    const auto out = CkMeans::RunOnMoments(mm, 4, 17, p, EngineWith(2));
    const int64_t total = out.center_distance_evals + out.bounds_skipped;
    EXPECT_GE(out.center_distance_evals, prev_evals) << "cap=" << cap;
    EXPECT_GE(total, prev_total) << "cap=" << cap;
    prev_evals = out.center_distance_evals;
    prev_total = total;
  }
}

// ---------------------------------------------------------------------------
// Engine knob routing and the registry entry.

TEST(Ckmeans, EngineKnobsRouteUkmeansWithoutChangingResults) {
  const auto ds = TestDataset(500, 3, 4, 35);
  const Ukmeans algo;

  engine::EngineConfig direct_cfg;
  direct_cfg.num_threads = 2;
  direct_cfg.ukmeans_ckmeans_reduction = false;
  direct_cfg.ukmeans_bound_pruning = false;
  Ukmeans direct_algo;
  direct_algo.set_engine(engine::Engine(direct_cfg));
  const ClusteringResult direct = direct_algo.Cluster(ds, 4, 19);
  EXPECT_EQ(direct.bounds_skipped, 0);

  engine::EngineConfig fast_cfg;
  fast_cfg.num_threads = 2;
  Ukmeans fast_algo;
  fast_algo.set_engine(engine::Engine(fast_cfg));
  const ClusteringResult fast = fast_algo.Cluster(ds, 4, 19);

  EXPECT_EQ(fast.labels, direct.labels);
  EXPECT_EQ(fast.objective, direct.objective);
  EXPECT_EQ(fast.iterations, direct.iterations);
  EXPECT_LT(fast.center_distance_evals, direct.center_distance_evals);
  EXPECT_GT(fast.bounds_skipped, 0);
}

TEST(Ckmeans, RegistryEntryMatchesUkmeans) {
  const auto ds = TestDataset(300, 3, 3, 37);
  auto ck = MakeClusterer("CK-means");
  ASSERT_TRUE(ck.ok());
  const ClusteringResult a = ck.ValueOrDie()->Cluster(ds, 3, 21);
  const ClusteringResult b = Ukmeans().Cluster(ds, 3, 21);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
}

// ---------------------------------------------------------------------------
// File-backed driver: auto-resident and epoch-streaming mini-batch modes.

struct FileFixture {
  std::string path;
  Ukmeans::Outcome direct;  // reference over the fully ingested file
  int k = 4;
  uint64_t seed = 23;
};

FileFixture MakeFileFixture(std::size_t n) {
  FileFixture f;
  f.path = TempPath("ckmeans_stream_" + std::to_string(n) + ".ubin");
  data::SyntheticGenParams gp;
  gp.n = n;
  gp.m = 6;
  gp.classes = 4;
  gp.seed = 97;
  EXPECT_TRUE(data::WriteSyntheticDataset(gp, f.path, "stream").ok());
  auto store = io::StreamMomentStoreFromFile(f.path);
  EXPECT_TRUE(store.ok());
  // Same block size as EngineWith: the objective's blocked summation order
  // is part of the determinism contract (fixed partition, any threads).
  f.direct = Ukmeans::RunOnMoments(store.ValueOrDie()->view(), f.k, f.seed,
                                   Ukmeans::Params(), EngineWith(1));
  return f;
}

TEST(CkmeansClusterFile, AutoResidentMatchesIngestedRun) {
  const FileFixture f = MakeFileFixture(600);
  for (int threads : kThreadCounts) {
    CkMeans::Params p;
    auto r = CkMeans::ClusterFile(f.path, f.k, f.seed, p, EngineWith(threads));
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    const ClusteringResult& out = r.ValueOrDie();
    EXPECT_EQ(out.labels, f.direct.labels) << "threads=" << threads;
    EXPECT_EQ(out.objective, f.direct.objective) << "threads=" << threads;
    EXPECT_EQ(out.iterations, f.direct.iterations) << "threads=" << threads;
  }
  std::remove(f.path.c_str());
}

TEST(CkmeansClusterFile, EveryMinibatchSizeMatchesIngestedRun) {
  const FileFixture f = MakeFileFixture(600);
  for (const std::size_t batch : {std::size_t{37}, std::size_t{64},
                                  std::size_t{256}, std::size_t{1000}}) {
    for (int threads : {1, 8}) {
      CkMeans::Params p;
      p.minibatch_size = batch;
      auto r =
          CkMeans::ClusterFile(f.path, f.k, f.seed, p, EngineWith(threads));
      ASSERT_TRUE(r.ok()) << "batch=" << batch << " threads=" << threads;
      const ClusteringResult& out = r.ValueOrDie();
      EXPECT_EQ(out.labels, f.direct.labels)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(out.objective, f.direct.objective)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(out.iterations, f.direct.iterations)
          << "batch=" << batch << " threads=" << threads;
    }
  }
  std::remove(f.path.c_str());
}

TEST(CkmeansClusterFile, TinyMemoryBudgetStreamsToCompletion) {
  // Budget far below the (m+1)*n*8-byte reduced representation: the auto
  // mode must fall back to epoch streaming and still match the ingested
  // run exactly — the bounded-memory acceptance path.
  const FileFixture f = MakeFileFixture(800);
  const std::size_t budget = 2048;  // < (6+1)*800*8 = 44800 bytes
  CkMeans::Params p;
  auto r = CkMeans::ClusterFile(f.path, f.k, f.seed, p,
                                EngineWith(2, budget));
  ASSERT_TRUE(r.ok());
  const ClusteringResult& out = r.ValueOrDie();
  EXPECT_EQ(out.labels, f.direct.labels);
  EXPECT_EQ(out.objective, f.direct.objective);
  EXPECT_EQ(out.iterations, f.direct.iterations);
  std::remove(f.path.c_str());
}

TEST(CkmeansClusterFile, RejectsPlusPlusInEpochMode) {
  const std::string path = TempPath("ckmeans_pp_reject.ubin");
  data::SyntheticGenParams gp;
  gp.n = 100;
  gp.m = 3;
  gp.classes = 2;
  ASSERT_TRUE(data::WriteSyntheticDataset(gp, path, "pp").ok());
  CkMeans::Params p;
  p.init = InitStrategy::kPlusPlus;
  p.minibatch_size = 32;  // force epoch streaming
  const auto r = CkMeans::ClusterFile(path, 2, 1, p);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uclust::clustering
