// Tests for the per-cluster aggregates and the closed-form objectives,
// including the O(m) incremental add/remove evaluations of Corollary 1.
#include <gtest/gtest.h>

#include <cmath>

#include "clustering/cluster_stats.h"
#include "common/rng.h"
#include "data/uncertainty_model.h"
#include "uncertain/moments.h"
#include "uncertain/uncertain_object.h"

namespace uclust::clustering {
namespace {

using data::MakeUncertainPdf;
using data::PdfFamily;
using uncertain::MomentMatrix;
using uncertain::PdfPtr;
using uncertain::UncertainObject;

// A mixed-family random collection of uncertain objects.
MomentMatrix RandomMoments(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<UncertainObject> objs;
  objs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<PdfPtr> dims;
    for (std::size_t j = 0; j < m; ++j) {
      const auto family = static_cast<PdfFamily>(rng.UniformInt(0, 2));
      dims.push_back(MakeUncertainPdf(family, rng.Uniform(-3.0, 3.0),
                                      rng.Uniform(0.05, 0.8)));
    }
    objs.emplace_back(std::move(dims));
  }
  return MomentMatrix::FromObjects(objs);
}

TEST(ClusterMoments, AddAccumulatesSums) {
  const MomentMatrix mm = RandomMoments(4, 3, 1);
  ClusterMoments c(3);
  c.Add(mm, 0);
  c.Add(mm, 2);
  EXPECT_EQ(c.size(), 2u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(c.sum_mu()[j], mm.mean(0)[j] + mm.mean(2)[j], 1e-12);
    EXPECT_NEAR(c.sum_mu2()[j],
                mm.second_moment(0)[j] + mm.second_moment(2)[j], 1e-12);
    EXPECT_NEAR(c.sum_var()[j], mm.variance(0)[j] + mm.variance(2)[j],
                1e-12);
  }
}

TEST(ClusterMoments, RemoveInvertsAdd) {
  const MomentMatrix mm = RandomMoments(5, 2, 2);
  ClusterMoments c(2);
  c.Add(mm, 1);
  c.Add(mm, 3);
  c.Add(mm, 4);
  c.Remove(mm, 3);
  ClusterMoments expected(2);
  expected.Add(mm, 1);
  expected.Add(mm, 4);
  EXPECT_EQ(c.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(c.sum_mu()[j], expected.sum_mu()[j], 1e-12);
    EXPECT_NEAR(c.sum_mu2()[j], expected.sum_mu2()[j], 1e-12);
    EXPECT_NEAR(c.sum_var()[j], expected.sum_var()[j], 1e-12);
  }
}

TEST(Objectives, EmptyClusterIsZero) {
  ClusterMoments c(4);
  EXPECT_DOUBLE_EQ(UcpcObjective(c), 0.0);
  EXPECT_DOUBLE_EQ(UkmeansObjective(c), 0.0);
  EXPECT_DOUBLE_EQ(MmvarObjective(c), 0.0);
}

TEST(Objectives, SingletonCluster) {
  // For |C| = 1: J_UK = sum_j (mu2_j - mu_j^2) = sigma^2(o);
  // J = sigma^2(o) + J_UK = 2 sigma^2(o); J_MM = sigma^2(o).
  const MomentMatrix mm = RandomMoments(1, 3, 3);
  ClusterMoments c(3);
  c.Add(mm, 0);
  EXPECT_NEAR(UkmeansObjective(c), mm.total_variance(0), 1e-12);
  EXPECT_NEAR(UcpcObjective(c), 2.0 * mm.total_variance(0), 1e-12);
  EXPECT_NEAR(MmvarObjective(c), mm.total_variance(0), 1e-12);
}

TEST(Objectives, UcpcDecomposition) {
  // Theorem 3 second form: J(C) = (1/|C|) sum sigma^2(o) + J_UK(C).
  const MomentMatrix mm = RandomMoments(10, 4, 4);
  ClusterMoments c(4);
  double sum_var = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    c.Add(mm, i);
    sum_var += mm.total_variance(i);
  }
  EXPECT_NEAR(UcpcObjective(c), sum_var / 10.0 + UkmeansObjective(c),
              1e-9 * (1.0 + UcpcObjective(c)));
}

TEST(Objectives, DispatchMatchesDirectCalls) {
  const MomentMatrix mm = RandomMoments(6, 2, 5);
  ClusterMoments c(2);
  for (std::size_t i = 0; i < 6; ++i) c.Add(mm, i);
  EXPECT_DOUBLE_EQ(Objective(ObjectiveKind::kUcpc, c), UcpcObjective(c));
  EXPECT_DOUBLE_EQ(Objective(ObjectiveKind::kMmvar, c), MmvarObjective(c));
  EXPECT_DOUBLE_EQ(Objective(ObjectiveKind::kUkmeans, c),
                   UkmeansObjective(c));
}

TEST(Objectives, NamesAreStable) {
  EXPECT_STREQ(ObjectiveKindName(ObjectiveKind::kUcpc), "UCPC");
  EXPECT_STREQ(ObjectiveKindName(ObjectiveKind::kMmvar), "MMVar");
  EXPECT_STREQ(ObjectiveKindName(ObjectiveKind::kUkmeans), "UK-means");
}

// Corollary 1: the O(m) incremental evaluations must agree exactly with
// recomputation after actually mutating the aggregates — for every
// objective, across random clusters.
class IncrementalUpdateProperty
    : public ::testing::TestWithParam<ObjectiveKind> {};

TEST_P(IncrementalUpdateProperty, AddMatchesRecompute) {
  const ObjectiveKind kind = GetParam();
  const MomentMatrix mm = RandomMoments(40, 5, 6);
  common::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    ClusterMoments c(5);
    const std::size_t members = 1 + rng.Index(30);
    for (std::size_t i = 0; i < members; ++i) c.Add(mm, rng.Index(40));
    const std::size_t incoming = rng.Index(40);
    const double predicted = ObjectiveAfterAdd(kind, c, mm, incoming);
    c.Add(mm, incoming);
    EXPECT_NEAR(predicted, Objective(kind, c),
                1e-9 * (1.0 + std::fabs(predicted)));
  }
}

TEST_P(IncrementalUpdateProperty, RemoveMatchesRecompute) {
  const ObjectiveKind kind = GetParam();
  const MomentMatrix mm = RandomMoments(40, 5, 8);
  common::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    ClusterMoments c(5);
    std::vector<std::size_t> members;
    const std::size_t count = 2 + rng.Index(25);
    for (std::size_t i = 0; i < count; ++i) {
      members.push_back(rng.Index(40));
      c.Add(mm, members.back());
    }
    const std::size_t victim = members[rng.Index(members.size())];
    const double predicted = ObjectiveAfterRemove(kind, c, mm, victim);
    c.Remove(mm, victim);
    EXPECT_NEAR(predicted, Objective(kind, c),
                1e-9 * (1.0 + std::fabs(predicted)));
  }
}

TEST_P(IncrementalUpdateProperty, RemoveToEmptyIsZero) {
  const ObjectiveKind kind = GetParam();
  const MomentMatrix mm = RandomMoments(3, 2, 10);
  ClusterMoments c(2);
  c.Add(mm, 1);
  EXPECT_DOUBLE_EQ(ObjectiveAfterRemove(kind, c, mm, 1), 0.0);
}

std::string ObjectiveName(
    const ::testing::TestParamInfo<ObjectiveKind>& param_info) {
  const std::string raw = ObjectiveKindName(param_info.param);
  return raw == "UK-means" ? "UKmeans" : raw;
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, IncrementalUpdateProperty,
                         ::testing::Values(ObjectiveKind::kUcpc,
                                           ObjectiveKind::kMmvar,
                                           ObjectiveKind::kUkmeans),
                         ObjectiveName);

TEST(TotalObjective, SumsPerClusterValues) {
  const MomentMatrix mm = RandomMoments(12, 3, 11);
  const std::vector<int> labels{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  ClusterMoments c0(3), c1(3), c2(3);
  for (std::size_t i = 0; i < 12; ++i) {
    (labels[i] == 0 ? c0 : labels[i] == 1 ? c1 : c2).Add(mm, i);
  }
  const double expected =
      UcpcObjective(c0) + UcpcObjective(c1) + UcpcObjective(c2);
  EXPECT_NEAR(TotalObjective(ObjectiveKind::kUcpc, mm, labels, 3), expected,
              1e-9);
}

TEST(ExpectedDistanceToUCentroid, SumsToTheoremThreeObjective) {
  // J(C) = sum_{o in C} ED^(o, U-centroid): the per-object closed form must
  // sum to the aggregate closed form.
  const MomentMatrix mm = RandomMoments(15, 4, 12);
  ClusterMoments c(4);
  for (std::size_t i = 0; i < 15; ++i) c.Add(mm, i);
  double sum = 0.0;
  for (std::size_t i = 0; i < 15; ++i) {
    sum += ExpectedDistanceToUCentroid(c, mm, i);
  }
  EXPECT_NEAR(sum, UcpcObjective(c), 1e-9 * (1.0 + sum));
}

}  // namespace
}  // namespace uclust::clustering
