// Unit tests for the common substrate: Status/Result, Rng, math utilities,
// CSV IO, and the CLI flag parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/cli.h"
#include "common/csv.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace uclust::common {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(Status, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveExtractsValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(Rng, IndexCoversRange) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(6);
  const auto picks = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(7);
  const auto picks = rng.SampleWithoutReplacement(5, 5);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMatchesMean) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(MathUtils, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(kNormal95), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-kNormal95), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(1.0) - NormalCdf(-1.0), 0.682689492137, 1e-9);
}

TEST(MathUtils, NormalPdfSymmetricAndPeaked) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_DOUBLE_EQ(NormalPdf(1.3), NormalPdf(-1.3));
  EXPECT_GT(NormalPdf(0.0), NormalPdf(0.5));
}

TEST(MathUtils, Exp95Constant) {
  EXPECT_NEAR(std::exp(-kExp95), 0.05, 1e-12);
}

TEST(MathUtils, SquaredDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 6.0, 3.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0.0);
}

TEST(MathUtils, SumAndMean) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(MathUtils, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtils, CloseTo) {
  EXPECT_TRUE(CloseTo(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(CloseTo(1.0, 1.001));
  EXPECT_TRUE(CloseTo(0.0, 0.0));
}

TEST(RunningStats, WelfordMatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stats.Add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.population_variance(), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Csv, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "uclust_csv_test.csv")
          .string();
  const std::vector<std::string> header{"a", "b"};
  const std::vector<std::vector<double>> rows{{1.5, 2.0}, {-3.25, 4.0}};
  ASSERT_TRUE(WriteCsv(path, header, rows).ok());
  auto result = ReadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(result.ok());
  const CsvTable table = std::move(result).ValueOrDie();
  EXPECT_EQ(table.header, header);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(table.rows[1][0], -3.25);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileIsIOError) {
  auto result = ReadCsv("/nonexistent/definitely/missing.csv", false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(Csv, NonNumericCellIsInvalid) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "uclust_bad.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,2\n3,oops\n", f);
    std::fclose(f);
  }
  auto result = ReadCsv(path, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, RaggedRowIsInvalid) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "uclust_ragged.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,2\n3\n", f);
    std::fclose(f);
  }
  auto result = ReadCsv(path, false);
  ASSERT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(Cli, ParsesKeysAndDefaults) {
  const char* argv[] = {"prog", "--runs=5", "--scale=0.25", "--verbose",
                        "--name=abc"};
  ArgParser args(5, const_cast<char**>(argv));
  EXPECT_TRUE(args.Has("runs"));
  EXPECT_EQ(args.GetInt("runs", 1), 5);
  EXPECT_DOUBLE_EQ(args.GetDouble("scale", 1.0), 0.25);
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetString("name", ""), "abc");
  EXPECT_EQ(args.GetInt("missing", 9), 9);
  EXPECT_FALSE(args.Has("missing"));
}

TEST(Cli, MalformedNumberFallsBack) {
  const char* argv[] = {"prog", "--runs=abc"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("runs", 3), 3);
}

TEST(Stopwatch, MeasuresElapsedMonotonically) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double first = sw.ElapsedMs();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(sw.ElapsedMs(), first);
  sw.Reset();
  EXPECT_LT(sw.ElapsedMs(), first + 1000.0);
}

}  // namespace
}  // namespace uclust::common
