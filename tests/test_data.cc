// Tests for the data substrate: dataset containers, generators, the
// uncertainty protocol, and CSV persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "data/benchmark_gen.h"
#include "data/csv_io.h"
#include "data/dataset.h"
#include "data/kdd_gen.h"
#include "data/microarray_gen.h"
#include "data/uncertainty_model.h"

namespace uclust::data {
namespace {

TEST(DeterministicDataset, ValidateCatchesRaggedPoints) {
  DeterministicDataset d;
  d.name = "bad";
  d.points = {{1.0, 2.0}, {3.0}};
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DeterministicDataset, ValidateCatchesBadLabels) {
  DeterministicDataset d;
  d.name = "bad";
  d.points = {{1.0}, {2.0}};
  d.labels = {0, 5};
  d.num_classes = 2;
  EXPECT_FALSE(d.Validate().ok());
  d.labels = {0, 1};
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DeterministicDataset, NormalizeToUnitCube) {
  DeterministicDataset d;
  d.points = {{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}};
  d.NormalizeToUnitCube();
  EXPECT_DOUBLE_EQ(d.points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(d.points[1][0], 0.5);
  EXPECT_DOUBLE_EQ(d.points[2][1], 1.0);
}

TEST(DeterministicDataset, DimensionRanges) {
  DeterministicDataset d;
  d.points = {{-1.0, 3.0}, {2.0, 7.0}};
  const auto r = d.DimensionRanges();
  EXPECT_DOUBLE_EQ(r[0].first, -1.0);
  EXPECT_DOUBLE_EQ(r[0].second, 2.0);
  EXPECT_DOUBLE_EQ(r[1].first, 3.0);
  EXPECT_DOUBLE_EQ(r[1].second, 7.0);
}

TEST(UncertainDataset, FromDeterministicWrapsDiracs) {
  DeterministicDataset d;
  d.name = "pts";
  d.points = {{1.0, 2.0}, {3.0, 4.0}};
  d.labels = {0, 1};
  d.num_classes = 2;
  const UncertainDataset u = UncertainDataset::FromDeterministic(d);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.dims(), 2u);
  EXPECT_EQ(u.labels(), d.labels);
  EXPECT_DOUBLE_EQ(u.moments().total_variance(0), 0.0);
  EXPECT_DOUBLE_EQ(u.object(1).mean()[1], 4.0);
}

TEST(MakeGaussianMixture, ShapeAndLabels) {
  MixtureParams p;
  p.n = 123;
  p.dims = 5;
  p.classes = 4;
  const auto d = MakeGaussianMixture(p, 1, "mix");
  EXPECT_EQ(d.size(), 123u);
  EXPECT_EQ(d.dims(), 5u);
  EXPECT_EQ(d.num_classes, 4);
  EXPECT_TRUE(d.Validate().ok());
  std::set<int> classes(d.labels.begin(), d.labels.end());
  EXPECT_EQ(classes.size(), 4u);  // every class inhabited
}

TEST(MakeGaussianMixture, PointsInUnitCube) {
  MixtureParams p;
  p.n = 200;
  p.dims = 3;
  p.classes = 3;
  const auto d = MakeGaussianMixture(p, 2, "mix");
  for (const auto& pt : d.points) {
    for (double x : pt) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(MakeGaussianMixture, DeterministicGivenSeed) {
  MixtureParams p;
  p.n = 50;
  p.dims = 2;
  p.classes = 2;
  const auto a = MakeGaussianMixture(p, 7, "a");
  const auto b = MakeGaussianMixture(p, 7, "b");
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(MakeGaussianMixture, ManyClassesInFewDimsStillWorks) {
  MixtureParams p;
  p.n = 400;
  p.dims = 2;
  p.classes = 17;  // forces the separation-relaxation path
  const auto d = MakeGaussianMixture(p, 3, "crowded");
  EXPECT_EQ(d.num_classes, 17);
  std::set<int> classes(d.labels.begin(), d.labels.end());
  EXPECT_EQ(classes.size(), 17u);
}

TEST(BenchmarkSpecs, MatchTableOneOfPaper) {
  const auto specs = PaperBenchmarkSpecs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_STREQ(specs[0].name, "Iris");
  EXPECT_EQ(specs[0].n, 150u);
  EXPECT_EQ(specs[0].dims, 4u);
  EXPECT_EQ(specs[0].classes, 3);
  EXPECT_STREQ(specs[7].name, "Letter");
  EXPECT_EQ(specs[7].n, 7648u);
  EXPECT_EQ(specs[7].dims, 16u);
  EXPECT_EQ(specs[7].classes, 10);
}

TEST(MakeBenchmarkDataset, ByNameAndScale) {
  auto r = MakeBenchmarkDataset("Ecoli", 5, 0.5);
  ASSERT_TRUE(r.ok());
  const auto d = std::move(r).ValueOrDie();
  EXPECT_EQ(d.name, "Ecoli");
  EXPECT_EQ(d.dims(), 7u);
  EXPECT_EQ(d.num_classes, 5);
  EXPECT_NEAR(static_cast<double>(d.size()), 327 * 0.5, 2.0);
}

TEST(MakeBenchmarkDataset, UnknownNameFails) {
  EXPECT_FALSE(MakeBenchmarkDataset("Nope", 1).ok());
  EXPECT_FALSE(MakeBenchmarkDataset("Iris", 1, 0.0).ok());
  EXPECT_FALSE(MakeBenchmarkDataset("Iris", 1, 1.5).ok());
}

TEST(PdfFamily, NamesAndParsing) {
  EXPECT_STREQ(PdfFamilyName(PdfFamily::kUniform), "uniform");
  EXPECT_STREQ(PdfFamilyName(PdfFamily::kNormal), "normal");
  EXPECT_STREQ(PdfFamilyName(PdfFamily::kExponential), "exponential");
  EXPECT_TRUE(ParsePdfFamily("U").ok());
  EXPECT_EQ(ParsePdfFamily("normal").ValueOrDie(), PdfFamily::kNormal);
  EXPECT_FALSE(ParsePdfFamily("cauchy").ok());
}

TEST(MakeUncertainPdf, MeanExactScaleControlsSpread) {
  for (auto family : {PdfFamily::kUniform, PdfFamily::kNormal,
                      PdfFamily::kExponential}) {
    const auto small = MakeUncertainPdf(family, 3.0, 0.1);
    const auto large = MakeUncertainPdf(family, 3.0, 1.0);
    EXPECT_DOUBLE_EQ(small->mean(), 3.0) << PdfFamilyName(family);
    EXPECT_DOUBLE_EQ(large->mean(), 3.0) << PdfFamilyName(family);
    EXPECT_LT(small->variance(), large->variance());
  }
}

TEST(VarianceFactor, MatchesConstructedPdfVariance) {
  for (auto family : {PdfFamily::kUniform, PdfFamily::kNormal,
                      PdfFamily::kExponential}) {
    const double factor = VarianceFactor(family);
    const auto pdf = MakeUncertainPdf(family, 0.0, 2.5);
    EXPECT_NEAR(pdf->variance(), factor * 2.5 * 2.5,
                1e-9 * (1.0 + pdf->variance()))
        << PdfFamilyName(family);
  }
}

TEST(UncertaintyModel, UncertainDatasetPreservesMeans) {
  MixtureParams p;
  p.n = 40;
  p.dims = 3;
  p.classes = 2;
  const auto d = MakeGaussianMixture(p, 11, "src");
  UncertaintyParams up;
  up.family = PdfFamily::kExponential;
  const UncertaintyModel model(d, up, 12);
  const UncertainDataset u = model.Uncertain();
  ASSERT_EQ(u.size(), d.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    for (std::size_t j = 0; j < u.dims(); ++j) {
      EXPECT_NEAR(u.object(i).mean()[j], d.points[i][j], 1e-12);
    }
  }
  EXPECT_EQ(u.labels(), d.labels);
}

TEST(UncertaintyModel, PerturbedStaysWithinRegions) {
  MixtureParams p;
  p.n = 30;
  p.dims = 2;
  p.classes = 2;
  const auto d = MakeGaussianMixture(p, 13, "src");
  UncertaintyParams up;
  up.family = PdfFamily::kUniform;
  const UncertaintyModel model(d, up, 14);
  const DeterministicDataset perturbed = model.Perturbed(15);
  ASSERT_EQ(perturbed.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.dims(); ++j) {
      EXPECT_GE(perturbed.points[i][j], model.pdf(i, j).lower() - 1e-12);
      EXPECT_LE(perturbed.points[i][j], model.pdf(i, j).upper() + 1e-12);
    }
  }
  EXPECT_EQ(perturbed.labels, d.labels);
}

TEST(UncertaintyModel, ScalesRespectConfiguredRange) {
  MixtureParams p;
  p.n = 50;
  p.dims = 2;
  p.classes = 2;
  const auto d = MakeGaussianMixture(p, 17, "src");
  UncertaintyParams up;
  up.family = PdfFamily::kNormal;
  up.min_scale_frac = 0.01;
  up.max_scale_frac = 0.02;
  const UncertaintyModel model(d, up, 18);
  const UncertainDataset u = model.Uncertain();
  // Data is unit-cube normalized, so sigma in [0.01, 0.02] and the truncated
  // variance is below 0.02^2.
  for (std::size_t i = 0; i < u.size(); ++i) {
    for (std::size_t j = 0; j < u.dims(); ++j) {
      EXPECT_LE(u.object(i).variance()[j], 0.02 * 0.02 + 1e-12);
      EXPECT_GT(u.object(i).variance()[j], 0.0);
    }
  }
}

TEST(KddGen, DatasetShape) {
  KddLikeParams p;
  p.n = 2000;
  const auto d = MakeKddLikeDataset(p, 21);
  EXPECT_EQ(d.size(), 2000u);
  EXPECT_EQ(d.dims(), 42u);
  EXPECT_EQ(d.num_classes, 23);
  std::set<int> classes(d.labels.begin(), d.labels.end());
  EXPECT_EQ(classes.size(), 23u);  // the paper requires all classes covered
}

TEST(KddGen, ZipfSkewsClassSizes) {
  KddLikeParams p;
  p.n = 5000;
  const auto d = MakeKddLikeDataset(p, 23);
  std::vector<int> sizes(23, 0);
  for (int l : d.labels) ++sizes[l];
  EXPECT_GT(sizes[0], sizes[22] * 5);  // strongly imbalanced
}

TEST(KddGen, MomentStreamConsistency) {
  KddLikeParams p;
  p.n = 500;
  UncertaintyParams up;
  up.family = PdfFamily::kNormal;
  std::vector<int> labels;
  const auto mm = MakeKddLikeMoments(p, up, 25, &labels);
  ASSERT_EQ(mm.size(), 500u);
  ASSERT_EQ(mm.dims(), 42u);
  ASSERT_EQ(labels.size(), 500u);
  const double factor = VarianceFactor(up.family);
  for (std::size_t i = 0; i < mm.size(); i += 37) {
    for (std::size_t j = 0; j < mm.dims(); ++j) {
      // mu2 = var + mean^2 must hold row-wise.
      EXPECT_NEAR(mm.second_moment(i)[j],
                  mm.variance(i)[j] + mm.mean(i)[j] * mm.mean(i)[j], 1e-9);
      // Variance within the configured envelope.
      const double lo = factor * up.min_scale_frac * up.min_scale_frac;
      const double hi = factor * up.max_scale_frac * up.max_scale_frac;
      EXPECT_GE(mm.variance(i)[j], lo - 1e-12);
      EXPECT_LE(mm.variance(i)[j], hi + 1e-12);
    }
  }
}

TEST(MicroarrayGen, SpecsMatchTableOneB) {
  const auto specs = PaperMicroarraySpecs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_STREQ(specs[0].name, "Neuroblastoma");
  EXPECT_EQ(specs[0].genes, 22282u);
  EXPECT_EQ(specs[0].conditions, 14u);
  EXPECT_STREQ(specs[1].name, "Leukaemia");
  EXPECT_EQ(specs[1].genes, 22690u);
  EXPECT_EQ(specs[1].conditions, 21u);
}

TEST(MicroarrayGen, HeteroscedasticUncertainty) {
  MicroarrayParams p;
  p.genes = 300;
  p.conditions = 6;
  const auto ds = MakeMicroarrayDataset(p, 31, "micro");
  EXPECT_EQ(ds.size(), 300u);
  EXPECT_EQ(ds.dims(), 6u);
  // Probe-level sigma must anti-correlate with expression: compare the
  // average variance of low- vs high-expression entries.
  double low_var = 0.0, high_var = 0.0;
  int low_n = 0, high_n = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = 0; j < ds.dims(); ++j) {
      const double expr = ds.object(i).mean()[j];
      const double var = ds.object(i).variance()[j];
      if (expr < 5.0) {
        low_var += var;
        ++low_n;
      } else if (expr > 9.0) {
        high_var += var;
        ++high_n;
      }
    }
  }
  ASSERT_GT(low_n, 0);
  ASSERT_GT(high_n, 0);
  EXPECT_GT(low_var / low_n, high_var / high_n);
}

TEST(MicroarrayGen, ByNameScales) {
  auto r = MakeMicroarrayByName("Leukaemia", 33, 0.01);
  ASSERT_TRUE(r.ok());
  const auto ds = std::move(r).ValueOrDie();
  EXPECT_EQ(ds.dims(), 21u);
  EXPECT_NEAR(static_cast<double>(ds.size()), 22690 * 0.01, 2.0);
  EXPECT_FALSE(MakeMicroarrayByName("Unknown", 1).ok());
}

TEST(CsvIo, RoundTripWithLabels) {
  MixtureParams p;
  p.n = 25;
  p.dims = 3;
  p.classes = 2;
  const auto d = MakeGaussianMixture(p, 41, "roundtrip");
  const std::string path =
      (std::filesystem::temp_directory_path() / "uclust_ds.csv").string();
  ASSERT_TRUE(SaveDeterministic(path, d).ok());
  auto r = LoadDeterministic(path, /*has_labels=*/true);
  ASSERT_TRUE(r.ok());
  const auto loaded = std::move(r).ValueOrDie();
  ASSERT_EQ(loaded.size(), d.size());
  EXPECT_EQ(loaded.labels, d.labels);
  EXPECT_EQ(loaded.num_classes, d.num_classes);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.dims(); ++j) {
      EXPECT_NEAR(loaded.points[i][j], d.points[i][j], 1e-12);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uclust::data
