// Determinism regression for the synthetic generator (src/data/synthetic_gen,
// the core behind tools/dataset_gen): equal parameters — in particular an
// equal seed — must produce byte-identical .ubin datasets and byte-identical
// .umom moment / .usmp sample sidecars across runs. The bench/CI scripts lean on this to
// reuse generated fixtures by content, and the CK-means streamed tests lean
// on it to regenerate identical inputs per test case.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"
#include "io/dataset_reader.h"
#include "io/ingest.h"
#include "io/sample_file.h"

namespace uclust {
namespace {

std::string TempPath(const std::string& file) {
  return ::testing::TempDir() + file;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

data::SyntheticGenParams SmallParams(uint64_t seed) {
  data::SyntheticGenParams p;
  p.n = 300;
  p.m = 5;
  p.classes = 3;
  p.family = data::GenFamily::kMix;  // exercises all four pdf families
  p.seed = seed;
  return p;
}

TEST(DatasetGenDeterminism, SameSeedProducesByteIdenticalDatasets) {
  const std::string path_a = TempPath("gen_seed_a.ubin");
  const std::string path_b = TempPath("gen_seed_b.ubin");
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(42), path_a, "gen").ok());
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(42), path_b, "gen").ok());

  const std::vector<char> bytes_a = ReadAllBytes(path_a);
  const std::vector<char> bytes_b = ReadAllBytes(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_TRUE(bytes_a == bytes_b)
      << "same-seed runs wrote different dataset bytes";

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(DatasetGenDeterminism, DifferentSeedProducesDifferentDatasets) {
  const std::string path_a = TempPath("gen_seed_42.ubin");
  const std::string path_b = TempPath("gen_seed_43.ubin");
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(42), path_a, "gen").ok());
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(43), path_b, "gen").ok());
  EXPECT_FALSE(ReadAllBytes(path_a) == ReadAllBytes(path_b))
      << "--seed has no effect on the generated records";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(DatasetGenDeterminism, SameSeedProducesByteIdenticalMomentSidecars) {
  const std::string path_a = TempPath("gen_mom_a.ubin");
  const std::string path_b = TempPath("gen_mom_b.ubin");
  const std::string umom_a = TempPath("gen_mom_a.umom");
  const std::string umom_b = TempPath("gen_mom_b.umom");
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(7), path_a, "gen").ok());
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(7), path_b, "gen").ok());

  // The sidecar header records the source file's mtime for its staleness
  // guard; pin both sources to one timestamp so the only bytes that could
  // differ are the ones derived from the generated content.
  const auto stamp = std::filesystem::last_write_time(path_a);
  std::filesystem::last_write_time(path_b, stamp);

  ASSERT_TRUE(io::BuildMomentSidecar(path_a, umom_a).ok());
  ASSERT_TRUE(io::BuildMomentSidecar(path_b, umom_b).ok());
  const std::vector<char> bytes_a = ReadAllBytes(umom_a);
  const std::vector<char> bytes_b = ReadAllBytes(umom_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_TRUE(bytes_a == bytes_b)
      << "same-seed runs wrote different sidecar bytes";

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(umom_a.c_str());
  std::remove(umom_b.c_str());
}

TEST(DatasetGenDeterminism, SameSeedProducesByteIdenticalSampleSidecars) {
  const std::string path_a = TempPath("gen_smp_a.ubin");
  const std::string path_b = TempPath("gen_smp_b.ubin");
  const std::string usmp_a = TempPath("gen_smp_a.usmp");
  const std::string usmp_b = TempPath("gen_smp_b.usmp");
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(9), path_a, "gen").ok());
  ASSERT_TRUE(
      data::WriteSyntheticDataset(SmallParams(9), path_b, "gen").ok());

  // Like the moment sidecar, the .usmp header records the source mtime for
  // its staleness guard; pin both sources to one timestamp so only
  // content-derived bytes can differ.
  const auto stamp = std::filesystem::last_write_time(path_a);
  std::filesystem::last_write_time(path_b, stamp);

  ASSERT_TRUE(io::BuildSampleSidecar(path_a, usmp_a, /*samples_per_object=*/8,
                                     /*seed=*/0x5eed)
                  .ok());
  ASSERT_TRUE(io::BuildSampleSidecar(path_b, usmp_b, /*samples_per_object=*/8,
                                     /*seed=*/0x5eed)
                  .ok());
  const std::vector<char> bytes_a = ReadAllBytes(usmp_a);
  const std::vector<char> bytes_b = ReadAllBytes(usmp_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_TRUE(bytes_a == bytes_b)
      << "same-seed runs wrote different sample sidecar bytes";

  // A different draw seed must change the sample bytes (and the header's
  // reuse-guard seed field).
  const std::string usmp_c = TempPath("gen_smp_c.usmp");
  ASSERT_TRUE(io::BuildSampleSidecar(path_a, usmp_c, /*samples_per_object=*/8,
                                     /*seed=*/0x5eee)
                  .ok());
  EXPECT_FALSE(ReadAllBytes(usmp_c) == bytes_a)
      << "--sample_seed has no effect on the drawn realizations";

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(usmp_a.c_str());
  std::remove(usmp_b.c_str());
  std::remove(usmp_c.c_str());
}

TEST(DatasetGenDeterminism, GeneratedFileRoundTripsThroughReader) {
  const std::string path = TempPath("gen_roundtrip.ubin");
  const data::SyntheticGenParams p = SmallParams(11);
  ASSERT_TRUE(data::WriteSyntheticDataset(p, path, "roundtrip").ok());

  io::BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.size(), p.n);
  EXPECT_EQ(reader.dims(), p.m);
  EXPECT_EQ(reader.name(), "roundtrip");

  // Labels must match what the generator core reports for each object.
  std::vector<int> labels;
  ASSERT_TRUE(reader.ReadLabels(&labels).ok());
  ASSERT_EQ(labels.size(), p.n);
  const data::SyntheticGenerator gen(p);
  for (std::size_t i = 0; i < p.n; ++i) {
    int expect = -1;
    (void)gen.MakeObject(i, &expect);
    ASSERT_EQ(labels[i], expect) << "label mismatch at object " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uclust
