// Tests for the density-based baselines FDBSCAN and FOPTICS.
#include <gtest/gtest.h>

#include <cmath>

#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset PlantedDataset(std::size_t n, int classes,
                                      uint64_t seed,
                                      double scale_frac = 0.03) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 2;
  params.classes = classes;
  params.sigma_min = 0.02;
  params.sigma_max = 0.03;
  params.min_separation = 0.6;
  const auto d = data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  up.min_scale_frac = scale_frac / 2.0;
  up.max_scale_frac = scale_frac;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

TEST(FdbscanPoissonBinomial, MatchesBruteForceEnumeration) {
  const std::vector<double> probs{0.9, 0.1, 0.5, 0.7};
  // Enumerate all 2^4 outcomes.
  for (int min_pts = 0; min_pts <= 5; ++min_pts) {
    double expected = 0.0;
    for (int mask = 0; mask < 16; ++mask) {
      double p = 1.0;
      int count = 0;
      for (int b = 0; b < 4; ++b) {
        if (mask & (1 << b)) {
          p *= probs[b];
          ++count;
        } else {
          p *= 1.0 - probs[b];
        }
      }
      if (count >= min_pts) expected += p;
    }
    EXPECT_NEAR(Fdbscan::AtLeastProbability(probs, min_pts), expected, 1e-12)
        << "min_pts=" << min_pts;
  }
}

TEST(FdbscanPoissonBinomial, EdgeCases) {
  EXPECT_DOUBLE_EQ(Fdbscan::AtLeastProbability({}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Fdbscan::AtLeastProbability({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(Fdbscan::AtLeastProbability({1.0, 1.0}, 2), 1.0);
  EXPECT_DOUBLE_EQ(Fdbscan::AtLeastProbability({0.0, 0.0}, 1), 0.0);
}

TEST(Fdbscan, RecoversWellSeparatedBlobs) {
  const auto ds = PlantedDataset(240, 3, 1);
  const Fdbscan algo;
  const ClusteringResult r = algo.Cluster(ds, 3, 2);
  // Density-based: cluster count is data-driven; with clean blobs it should
  // find roughly the planted number and align with the reference classes.
  EXPECT_GE(r.clusters_found, 2);
  EXPECT_GT(eval::FMeasure(ds.labels(), r.labels), 0.7);
}

TEST(Fdbscan, NoiseGetsItsOwnCluster) {
  // Three tight blobs plus a handful of remote outliers: outliers must not
  // merge into the blobs.
  auto ds = PlantedDataset(150, 3, 3);
  std::vector<uncertain::UncertainObject> objects = ds.objects();
  std::vector<int> labels = ds.labels();
  common::Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    std::vector<double> far{50.0 + 10.0 * i, -50.0 - 10.0 * i};
    objects.push_back(uncertain::UncertainObject::Deterministic(far));
    labels.push_back(0);  // class irrelevant
  }
  const data::UncertainDataset with_noise("noisy", std::move(objects),
                                          std::move(labels), 3);
  const Fdbscan algo;
  const ClusteringResult r = algo.Cluster(with_noise, 3, 5);
  EXPECT_GT(r.noise_objects, 0);
  // Noise objects share the final cluster id.
  const int noise_id = r.clusters_found - 1;
  for (std::size_t i = with_noise.size() - 5; i < with_noise.size(); ++i) {
    EXPECT_EQ(r.labels[i], noise_id);
  }
}

TEST(Fdbscan, DeterministicGivenSeeds) {
  const auto ds = PlantedDataset(120, 2, 5);
  const Fdbscan algo;
  const auto a = algo.Cluster(ds, 2, 6);
  const auto b = algo.Cluster(ds, 2, 6);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Fdbscan, ExplicitEpsOverridesHeuristic) {
  const auto ds = PlantedDataset(100, 2, 7);
  Fdbscan::Params tiny;
  tiny.eps = 1e-6;  // nothing is reachable: everything is noise
  const ClusteringResult r = Fdbscan(tiny).Cluster(ds, 2, 8);
  EXPECT_EQ(r.noise_objects, static_cast<int>(ds.size()));
  EXPECT_EQ(r.clusters_found, 1);  // the single shared noise cluster
}

TEST(Fdbscan, HighUncertaintyReducesCoreConfidence) {
  // With large object variance the distance probabilities at a fixed eps
  // drop, shrinking clusters — the behaviour FDBSCAN is known for.
  const auto crisp = PlantedDataset(150, 2, 9, /*scale_frac=*/0.01);
  const auto fuzzy = PlantedDataset(150, 2, 9, /*scale_frac=*/0.30);
  Fdbscan::Params p;
  p.eps = 0.12;
  const ClusteringResult rc = Fdbscan(p).Cluster(crisp, 2, 10);
  const ClusteringResult rf = Fdbscan(p).Cluster(fuzzy, 2, 10);
  EXPECT_LE(rc.noise_objects, rf.noise_objects);
}

TEST(FopticsExtract, ThresholdCutBasics) {
  // Hand-built reachability plot: two valleys separated by a spike.
  const std::vector<double> reach{
      std::numeric_limits<double>::infinity(), 0.1, 0.1, 5.0, 0.2, 0.2};
  const std::vector<double> core(6, 0.1);
  const std::vector<std::size_t> order{0, 1, 2, 3, 4, 5};
  const std::vector<int> labels =
      Foptics::ExtractAtThreshold(reach, core, order, 1.0);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 0);
  EXPECT_EQ(labels[3], 1);  // spike starts the second cluster (core <= t)
  EXPECT_EQ(labels[4], 1);
  EXPECT_EQ(labels[5], 1);
}

TEST(FopticsExtract, NonCoreSpikeBecomesNoise) {
  const std::vector<double> reach{
      std::numeric_limits<double>::infinity(), 0.1, 9.0, 0.1};
  const std::vector<double> core{0.1, 0.1, 9.0, 0.1};
  const std::vector<std::size_t> order{0, 1, 2, 3};
  const std::vector<int> labels =
      Foptics::ExtractAtThreshold(reach, core, order, 1.0);
  EXPECT_EQ(labels[2], -1);
}

TEST(Foptics, RecoversWellSeparatedBlobs) {
  const auto ds = PlantedDataset(180, 3, 11);
  const Foptics algo;
  const ClusteringResult r = algo.Cluster(ds, 3, 12);
  EXPECT_GE(r.clusters_found, 2);
  EXPECT_GT(eval::FMeasure(ds.labels(), r.labels), 0.6);
}

TEST(Foptics, LabelsCoverAllObjects) {
  const auto ds = PlantedDataset(100, 2, 13);
  const Foptics algo;
  const ClusteringResult r = algo.Cluster(ds, 2, 14);
  ASSERT_EQ(r.labels.size(), ds.size());
  for (int l : r.labels) EXPECT_GE(l, 0);
}

TEST(Foptics, DeterministicGivenSeeds) {
  const auto ds = PlantedDataset(90, 2, 15);
  const Foptics algo;
  const auto a = algo.Cluster(ds, 2, 16);
  const auto b = algo.Cluster(ds, 2, 16);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace uclust::clustering
