// Tests for the execution engine: ThreadPool scheduling and reuse,
// exception propagation, blocked-range helpers, and the determinism
// contract of MapBlocks reductions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "engine/engine.h"
#include "engine/parallel_for.h"
#include "engine/thread_pool.h"

namespace uclust::engine {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  EXPECT_EQ(pool.max_concurrency(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.RunTasks(100, [&](std::size_t t) { ++hits[t]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.RunTasks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.RunTasks(16, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200 * 16);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.RunTasks(64,
                    [&](std::size_t t) {
                      if (t == 13) throw std::runtime_error("task 13 failed");
                      ++completed;
                    }),
      std::runtime_error);
  // Every non-throwing task still ran; the batch drained before rethrow.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, SurvivesExceptionAndKeepsWorking) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.RunTasks(
                   8, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  std::atomic<int> total{0};
  pool.RunTasks(8, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, NestedRunTasksExecutesInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.RunTasks(4, [&](std::size_t) {
    pool.RunTasks(5, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 4 * 5);
}

TEST(ParallelFor, CoversTheRangeWithoutOverlap) {
  for (int threads : {1, 4}) {
    EngineConfig config;
    config.num_threads = threads;
    config.block_size = 7;  // deliberately not dividing n
    Engine eng(config);
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(eng, 100, [&](const BlockedRange& r) {
      EXPECT_LT(r.begin, r.end);
      for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeNeverInvokesTheBody) {
  EngineConfig config;
  config.num_threads = 4;
  Engine eng(config);
  bool ran = false;
  ParallelFor(eng, 0, [&](const BlockedRange&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, BlockIndicesMatchBoundaries) {
  EngineConfig config;
  config.num_threads = 2;
  config.block_size = 10;
  Engine eng(config);
  std::vector<std::atomic<int>> seen(NumBlocks(95, 10));
  ParallelFor(eng, 95, [&](const BlockedRange& r) {
    EXPECT_EQ(r.begin, r.index * 10);
    EXPECT_EQ(r.end, std::min<std::size_t>(r.begin + 10, 95));
    ++seen[r.index];
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(MapBlocks, OrderedReductionIsThreadCountInvariant) {
  // A sum of pseudo-random doubles is sensitive to association order; the
  // per-block partials must therefore be bit-identical across thread counts.
  std::vector<double> values(10'000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i)) * 1e3;
  }
  auto total_at = [&](int threads) {
    EngineConfig config;
    config.num_threads = threads;
    config.block_size = 256;
    Engine eng(config);
    const std::vector<double> partials =
        MapBlocks<double>(eng, values.size(), [&](const BlockedRange& r) {
          double acc = 0.0;
          for (std::size_t i = r.begin; i < r.end; ++i) acc += values[i];
          return acc;
        });
    double total = 0.0;
    for (double p : partials) total += p;
    return total;
  };
  const double serial = total_at(1);
  for (int threads : {2, 3, 8}) {
    const double parallel = total_at(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(Engine, SerialEngineHasNoPool) {
  const Engine& eng = Engine::Serial();
  EXPECT_EQ(eng.pool(), nullptr);
  EXPECT_EQ(eng.num_threads(), 1);
}

TEST(Engine, SingleThreadConfigStaysSerial) {
  EngineConfig config;
  config.num_threads = 1;
  Engine eng(config);
  EXPECT_EQ(eng.pool(), nullptr);
}

TEST(Engine, AutoThreadsResolvesToHardware) {
  EngineConfig config;
  config.num_threads = 0;  // auto
  Engine eng(config);
  EXPECT_GE(eng.num_threads(), 1);
}

TEST(Engine, CopiesShareOnePool) {
  EngineConfig config;
  config.num_threads = 4;
  Engine a(config);
  Engine b = a;
  EXPECT_EQ(a.pool(), b.pool());
  EXPECT_NE(a.pool(), nullptr);
}

TEST(PerWorker, SlotsMatchConcurrencyAndStayInRange) {
  EngineConfig config;
  config.num_threads = 3;
  config.block_size = 4;
  Engine eng(config);
  PerWorker<std::vector<int>> scratch(eng);
  EXPECT_EQ(scratch.slots().size(), 3u);
  std::atomic<int> touched{0};
  ParallelFor(eng, 1000, [&](const BlockedRange& r) {
    std::vector<int>& local = scratch.local();
    local.assign(1, static_cast<int>(r.index));
    touched += static_cast<int>(r.end - r.begin);
  });
  EXPECT_EQ(touched.load(), 1000);
}

}  // namespace
}  // namespace uclust::engine
