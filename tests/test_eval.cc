// Tests for the evaluation module: external criteria (F-measure & friends),
// internal criteria (intra/inter/Q) validated against brute-force pairwise
// computation, and the Theta protocol plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "eval/internal.h"
#include "eval/protocol.h"
#include "uncertain/expected_distance.h"

namespace uclust::eval {
namespace {

TEST(Contingency, CountsAndMarginals) {
  const std::vector<int> ref{0, 0, 1, 1, 2};
  const std::vector<int> clu{1, 1, 0, 1, 0};
  const Contingency t = BuildContingency(ref, clu);
  EXPECT_EQ(t.n, 5u);
  ASSERT_EQ(t.counts.size(), 3u);
  ASSERT_EQ(t.counts[0].size(), 2u);
  EXPECT_DOUBLE_EQ(t.counts[0][1], 2.0);
  EXPECT_DOUBLE_EQ(t.counts[1][0], 1.0);
  EXPECT_DOUBLE_EQ(t.counts[1][1], 1.0);
  EXPECT_DOUBLE_EQ(t.counts[2][0], 1.0);
  EXPECT_DOUBLE_EQ(t.class_sizes[0], 2.0);
  EXPECT_DOUBLE_EQ(t.cluster_sizes[1], 3.0);
}

TEST(FMeasure, PerfectClusteringScoresOne) {
  const std::vector<int> ref{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(FMeasure(ref, ref), 1.0);
  // Label permutation does not matter.
  const std::vector<int> permuted{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(FMeasure(ref, permuted), 1.0);
}

TEST(FMeasure, SingleClusterKnownValue) {
  // Two balanced classes collapsed into one cluster:
  // P = 1/2, R = 1 -> F_uv = 2/3 for both classes -> F = 2/3.
  const std::vector<int> ref{0, 0, 1, 1};
  const std::vector<int> clu{0, 0, 0, 0};
  EXPECT_NEAR(FMeasure(ref, clu), 2.0 / 3.0, 1e-12);
}

TEST(FMeasure, HandComputedSplit) {
  // Class 0 = {a,b,c}, class 1 = {d,e}; clustering {a,b}{c,d,e}.
  // F_00: P=1, R=2/3 -> 0.8; F_01: P=1/3, R=1/3 -> 1/3 => class0 best 0.8.
  // F_10: P=0; F_11: P=2/3, R=1 -> 0.8 => class1 best 0.8.
  // F = (3*0.8 + 2*0.8)/5 = 0.8.
  const std::vector<int> ref{0, 0, 0, 1, 1};
  const std::vector<int> clu{0, 0, 1, 1, 1};
  EXPECT_NEAR(FMeasure(ref, clu), 0.8, 1e-12);
}

TEST(FMeasure, RangeIsZeroOne) {
  const std::vector<int> ref{0, 1, 0, 1, 0, 1};
  const std::vector<int> clu{0, 0, 1, 1, 2, 2};
  const double f = FMeasure(ref, clu);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(Purity, KnownValues) {
  const std::vector<int> ref{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity(ref, ref), 1.0);
  const std::vector<int> clu{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Purity(ref, clu), 0.5);
}

TEST(Nmi, PerfectAndIndependent) {
  const std::vector<int> ref{0, 0, 1, 1};
  EXPECT_NEAR(Nmi(ref, ref), 1.0, 1e-12);
  // One big cluster carries no information.
  const std::vector<int> clu{0, 0, 0, 0};
  EXPECT_NEAR(Nmi(ref, clu), 0.0, 1e-12);
}

TEST(AdjustedRand, PerfectPermutedAndRandomish) {
  const std::vector<int> ref{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRand(ref, ref), 1.0);
  const std::vector<int> permuted{1, 1, 2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(AdjustedRand(ref, permuted), 1.0);
  const std::vector<int> one{0, 0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(AdjustedRand(ref, one), 0.0);
}

// --- Internal criteria ----------------------------------------------------

data::UncertainDataset SmallUncertain(std::size_t n, uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 3;
  params.classes = 3;
  const auto d = data::MakeGaussianMixture(params, seed, "small");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kUniform;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

// Brute-force intra/inter with explicit pairwise ED^ loops.
InternalQuality BruteForceInternal(const data::UncertainDataset& ds,
                                   const std::vector<int>& labels, int k,
                                   double normalizer) {
  InternalQuality out;
  out.normalizer = normalizer;
  double intra_sum = 0.0;
  int intra_clusters = 0;
  for (int c = 0; c < k; ++c) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (labels[i] == c) members.push_back(i);
    }
    if (members.empty()) continue;
    ++intra_clusters;
    if (members.size() < 2) continue;
    double acc = 0.0;
    for (std::size_t a : members) {
      for (std::size_t b : members) {
        if (a == b) continue;
        acc += uncertain::ExpectedSquaredDistance(ds.object(a), ds.object(b));
      }
    }
    intra_sum += acc / (static_cast<double>(members.size()) *
                        (static_cast<double>(members.size()) - 1.0));
  }
  out.intra = intra_clusters > 0
                  ? intra_sum / intra_clusters / normalizer
                  : 0.0;
  double inter_sum = 0.0;
  int pairs = 0;
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      std::vector<std::size_t> ma, mb2;
      for (std::size_t i = 0; i < ds.size(); ++i) {
        if (labels[i] == a) ma.push_back(i);
        if (labels[i] == b) mb2.push_back(i);
      }
      if (ma.empty() || mb2.empty()) continue;
      double acc = 0.0;
      for (std::size_t x : ma) {
        for (std::size_t y : mb2) {
          acc +=
              uncertain::ExpectedSquaredDistance(ds.object(x), ds.object(y));
        }
      }
      inter_sum += acc / (static_cast<double>(ma.size()) *
                          static_cast<double>(mb2.size()));
      ++pairs;
    }
  }
  out.inter = pairs > 0 ? inter_sum / pairs / normalizer : 0.0;
  out.q = out.inter - out.intra;
  return out;
}

TEST(Internal, AggregateMatchesBruteForce) {
  const auto ds = SmallUncertain(60, 1);
  common::Rng rng(2);
  std::vector<int> labels(ds.size());
  for (auto& l : labels) l = rng.UniformInt(0, 2);
  labels[0] = 0;
  labels[1] = 1;
  labels[2] = 2;  // ensure all clusters non-empty
  const InternalQuality fast =
      EvaluateInternal(ds.moments(), labels, 3, Normalization::kNone);
  const InternalQuality brute = BruteForceInternal(ds, labels, 3, 1.0);
  EXPECT_NEAR(fast.intra, brute.intra, 1e-9 * (1.0 + brute.intra));
  EXPECT_NEAR(fast.inter, brute.inter, 1e-9 * (1.0 + brute.inter));
  EXPECT_NEAR(fast.q, brute.q, 1e-9 * (1.0 + std::fabs(brute.q)));
}

TEST(Internal, UpperBoundNormalizerDominatesExactMax) {
  const auto ds = SmallUncertain(50, 3);
  const double ub = EdNormalizer(ds.moments(), Normalization::kUpperBound);
  const double exact = EdNormalizer(ds.moments(), Normalization::kExactMax);
  EXPECT_GE(ub, exact);
  EXPECT_GT(exact, 0.0);
}

TEST(Internal, NormalizedValuesInUnitRange) {
  const auto ds = SmallUncertain(80, 5);
  common::Rng rng(6);
  std::vector<int> labels(ds.size());
  for (auto& l : labels) l = rng.UniformInt(0, 3);
  for (int c = 0; c < 4; ++c) labels[c] = c;
  const InternalQuality q = EvaluateInternal(ds.moments(), labels, 4);
  EXPECT_GE(q.intra, 0.0);
  EXPECT_LE(q.intra, 1.0);
  EXPECT_GE(q.inter, 0.0);
  EXPECT_LE(q.inter, 1.0);
  EXPECT_GE(q.q, -1.0);
  EXPECT_LE(q.q, 1.0);
}

TEST(Internal, GoodClusteringBeatsRandomClustering) {
  const auto ds = SmallUncertain(120, 7);
  const clustering::Ucpc algo;
  const auto good = algo.Cluster(ds, 3, 8);
  common::Rng rng(9);
  std::vector<int> random_labels(ds.size());
  for (auto& l : random_labels) l = rng.UniformInt(0, 2);
  for (int c = 0; c < 3; ++c) random_labels[c] = c;
  const double q_good = EvaluateInternal(ds.moments(), good.labels, 3).q;
  const double q_rand = EvaluateInternal(ds.moments(), random_labels, 3).q;
  EXPECT_GT(q_good, q_rand);
}

TEST(Internal, SingletonClustersContributeZeroIntra) {
  const auto ds = SmallUncertain(10, 11);
  std::vector<int> labels(ds.size(), 0);
  labels[9] = 1;  // singleton
  const InternalQuality q =
      EvaluateInternal(ds.moments(), labels, 2, Normalization::kNone);
  const InternalQuality brute = BruteForceInternal(ds, labels, 2, 1.0);
  EXPECT_NEAR(q.intra, brute.intra, 1e-9 * (1.0 + brute.intra));
}

// --- Theta protocol ---------------------------------------------------

TEST(Protocol, ProducesConsistentSummary) {
  data::MixtureParams params;
  params.n = 90;
  params.dims = 2;
  params.classes = 3;
  const auto d = data::MakeGaussianMixture(params, 13, "proto");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  const clustering::Ukmeans algo;
  const ThetaSummary s = RunThetaProtocol(d, up, algo, 3, 3, 17);
  EXPECT_EQ(s.runs, 3);
  EXPECT_GE(s.f_case1, 0.0);
  EXPECT_LE(s.f_case1, 1.0);
  EXPECT_GE(s.f_case2, 0.0);
  EXPECT_LE(s.f_case2, 1.0);
  EXPECT_NEAR(s.theta, s.f_case2 - s.f_case1, 1e-12);
  EXPECT_GE(s.q_case2, -1.0);
  EXPECT_LE(s.q_case2, 1.0);
}

TEST(Protocol, DeterministicGivenSeed) {
  data::MixtureParams params;
  params.n = 60;
  params.dims = 2;
  params.classes = 2;
  const auto d = data::MakeGaussianMixture(params, 19, "proto2");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kExponential;
  const clustering::Ucpc algo;
  const ThetaSummary a = RunThetaProtocol(d, up, algo, 2, 2, 23);
  const ThetaSummary b = RunThetaProtocol(d, up, algo, 2, 2, 23);
  EXPECT_DOUBLE_EQ(a.theta, b.theta);
  EXPECT_DOUBLE_EQ(a.q_case2, b.q_case2);
}

}  // namespace
}  // namespace uclust::eval
