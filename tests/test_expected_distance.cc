// Validates the closed-form expected distances (Eq. 8, Lemma 3) against
// Monte-Carlo integration across pdf families, plus their algebraic
// identities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "data/uncertainty_model.h"
#include "uncertain/expected_distance.h"
#include "uncertain/uncertain_object.h"

namespace uclust::uncertain {
namespace {

using data::MakeUncertainPdf;
using data::PdfFamily;

UncertainObject MakeObject(PdfFamily family, std::vector<double> means,
                           std::vector<double> scales) {
  std::vector<PdfPtr> dims;
  for (std::size_t j = 0; j < means.size(); ++j) {
    dims.push_back(MakeUncertainPdf(family, means[j], scales[j]));
  }
  return UncertainObject(std::move(dims));
}

class ExpectedDistanceFamily : public ::testing::TestWithParam<PdfFamily> {};

TEST_P(ExpectedDistanceFamily, PointDistanceMatchesMonteCarlo) {
  const UncertainObject o =
      MakeObject(GetParam(), {1.0, -2.0, 0.5}, {0.4, 0.8, 0.2});
  const std::vector<double> y{0.0, 1.0, 0.0};
  const double exact = ExpectedSquaredDistanceToPoint(o, y);
  common::Rng rng(101);
  const double mc = SampledExpectedSquaredDistanceToPoint(o, y, &rng, 400000);
  EXPECT_NEAR(mc, exact, 0.03 * exact + 1e-6);
}

TEST_P(ExpectedDistanceFamily, ObjectDistanceMatchesMonteCarlo) {
  const UncertainObject a = MakeObject(GetParam(), {0.0, 0.0}, {0.5, 0.5});
  const UncertainObject b = MakeObject(GetParam(), {3.0, -1.0}, {0.2, 0.9});
  const double exact = ExpectedSquaredDistance(a, b);
  common::Rng rng(202);
  const double mc = SampledExpectedSquaredDistance(a, b, &rng, 400000);
  EXPECT_NEAR(mc, exact, 0.03 * exact + 1e-6);
}

TEST_P(ExpectedDistanceFamily, DistanceToOwnMeanIsTotalVariance) {
  // Eq. 8 with y = mu(o): ED(o, mu(o)) = sigma^2(o).
  const UncertainObject o = MakeObject(GetParam(), {2.0, 5.0}, {0.7, 0.3});
  EXPECT_NEAR(ExpectedSquaredDistanceToPoint(o, o.mean()),
              o.total_variance(), 1e-12);
}

std::string FamilyName(
    const ::testing::TestParamInfo<PdfFamily>& param_info) {
  return data::PdfFamilyName(param_info.param);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ExpectedDistanceFamily,
                         ::testing::Values(PdfFamily::kUniform,
                                           PdfFamily::kNormal,
                                           PdfFamily::kExponential),
                         FamilyName);

TEST(ExpectedDistance, Lemma3ExpandsAsMeanDistancePlusVariances) {
  const UncertainObject a =
      MakeObject(PdfFamily::kNormal, {1.0, 2.0}, {0.3, 0.6});
  const UncertainObject b =
      MakeObject(PdfFamily::kUniform, {-1.0, 4.0}, {0.5, 0.2});
  const double lemma3 = ExpectedSquaredDistance(a, b);
  const double identity = common::SquaredDistance(a.mean(), b.mean()) +
                          a.total_variance() + b.total_variance();
  EXPECT_NEAR(lemma3, identity, 1e-12);
}

TEST(ExpectedDistance, SymmetricInArguments) {
  const UncertainObject a =
      MakeObject(PdfFamily::kExponential, {0.0, 1.0}, {0.4, 0.4});
  const UncertainObject b =
      MakeObject(PdfFamily::kNormal, {2.0, 2.0}, {0.1, 0.9});
  EXPECT_DOUBLE_EQ(ExpectedSquaredDistance(a, b),
                   ExpectedSquaredDistance(b, a));
}

TEST(ExpectedDistance, SelfDistanceIsTwiceVariance) {
  // ED^(o, o) with independent realizations = 2 sigma^2(o) (not zero!),
  // which is exactly why pairwise criteria behave differently from
  // centroid-based ones.
  const UncertainObject o =
      MakeObject(PdfFamily::kNormal, {3.0, 3.0}, {0.5, 0.5});
  EXPECT_NEAR(ExpectedSquaredDistance(o, o), 2.0 * o.total_variance(), 1e-12);
}

TEST(ExpectedDistance, DiracObjectsReduceToSquaredEuclidean) {
  const std::vector<double> p{1.0, 2.0};
  const std::vector<double> q{4.0, 6.0};
  const UncertainObject a = UncertainObject::Deterministic(p);
  const UncertainObject b = UncertainObject::Deterministic(q);
  EXPECT_DOUBLE_EQ(ExpectedSquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(ExpectedSquaredDistanceToPoint(a, q), 25.0);
}

TEST(ExpectedDistance, EqEightDecomposition) {
  // ED(o, y) = ED(o, mu(o)) + ||y - mu(o)||^2 for any y.
  const UncertainObject o =
      MakeObject(PdfFamily::kUniform, {0.0, 0.0, 0.0}, {1.0, 0.5, 0.25});
  common::Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> y(3);
    for (auto& v : y) v = rng.Uniform(-5.0, 5.0);
    const double direct = ExpectedSquaredDistanceToPoint(o, y);
    const double decomposed =
        o.total_variance() + common::SquaredDistance(o.mean(), y);
    EXPECT_NEAR(direct, decomposed, 1e-12);
  }
}

TEST(ExpectedDistance, UncertaintyAlwaysIncreasesDistance) {
  // For equal means, ED^ between uncertain objects exceeds the distance
  // between their expected values by the total variances.
  const UncertainObject sharp = UncertainObject::Deterministic(
      std::vector<double>{1.0, 1.0});
  const UncertainObject fuzzy =
      MakeObject(PdfFamily::kNormal, {1.0, 1.0}, {0.5, 0.5});
  EXPECT_GT(ExpectedSquaredDistance(fuzzy, sharp), 0.0);
  EXPECT_NEAR(ExpectedSquaredDistance(fuzzy, sharp), fuzzy.total_variance(),
              1e-12);
}

}  // namespace
}  // namespace uclust::uncertain
