// Tests for the library extensions beyond the paper: the algorithm
// registry, D^2-weighted initialization, the expected-distance silhouette,
// and model selection for k.
#include <gtest/gtest.h>

#include <set>

#include "clustering/init.h"
#include "clustering/registry.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "eval/model_selection.h"
#include "eval/silhouette.h"
#include "uncertain/expected_distance.h"

namespace uclust {
namespace {

data::UncertainDataset PlantedDataset(std::size_t n, int classes,
                                      uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 3;
  params.classes = classes;
  params.sigma_min = 0.02;
  params.sigma_max = 0.04;
  params.min_separation = 0.5;
  const auto d = data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

TEST(Registry, ListsAllThirteenAlgorithms) {
  const auto names = clustering::RegisteredClusterers();
  EXPECT_EQ(names.size(), 13u);
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Registry, MakeByNameMatchesReportedName) {
  for (const std::string& name : clustering::RegisteredClusterers()) {
    auto result = clustering::MakeClusterer(name);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(std::move(result).ValueOrDie()->name(), name);
  }
}

TEST(Registry, UnknownNameFails) {
  auto result = clustering::MakeClusterer("DBSCAN++");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kNotFound);
}

TEST(Registry, MakeAllProducesWorkingInstances) {
  const auto ds = PlantedDataset(60, 2, 1);
  for (const auto& algo : clustering::MakeAllClusterers()) {
    const auto r = algo->Cluster(ds, 2, 2);
    EXPECT_EQ(r.labels.size(), ds.size()) << algo->name();
  }
}

TEST(PlusPlusInit, SeedsAreDistinctAndSpread) {
  const auto ds = PlantedDataset(150, 3, 3);
  common::Rng rng(4);
  const auto seeds = clustering::PlusPlusObjects(ds.moments(), 3, &rng);
  ASSERT_EQ(seeds.size(), 3u);
  const std::set<std::size_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 3u);
  // With three well-separated classes, D^2 seeding nearly always picks one
  // seed per class.
  std::set<int> classes;
  for (std::size_t s : seeds) classes.insert(ds.labels()[s]);
  EXPECT_EQ(classes.size(), 3u);
}

TEST(PlusPlusInit, PartitionFromSeedsCoversEveryCluster) {
  const auto ds = PlantedDataset(90, 3, 5);
  common::Rng rng(6);
  const auto seeds = clustering::PlusPlusObjects(ds.moments(), 3, &rng);
  const auto labels = clustering::PartitionFromSeeds(ds.moments(), seeds);
  const auto sizes = clustering::ClusterSizes(labels, 3);
  for (auto s : sizes) EXPECT_GT(s, 0u);
  for (std::size_t c = 0; c < seeds.size(); ++c) {
    EXPECT_EQ(labels[seeds[c]], static_cast<int>(c));
  }
}

TEST(PlusPlusInit, DegenerateIdenticalPointsStillWorks) {
  // All means identical: the D^2 mass is zero after the first seed; the
  // fallback must still return k distinct-ish seeds without hanging.
  std::vector<uncertain::UncertainObject> objs;
  for (int i = 0; i < 10; ++i) {
    objs.push_back(uncertain::UncertainObject::Deterministic(
        std::vector<double>{1.0, 1.0}));
  }
  const data::UncertainDataset ds("flat", std::move(objs), {}, 0);
  common::Rng rng(7);
  const auto seeds = clustering::PlusPlusObjects(ds.moments(), 3, &rng);
  EXPECT_EQ(seeds.size(), 3u);
}

TEST(PlusPlusInit, ImprovesOrMatchesUkmeansObjective) {
  const auto ds = PlantedDataset(300, 5, 9);
  double forgy = 0.0, pp = 0.0;
  for (uint64_t s = 0; s < 10; ++s) {
    clustering::Ukmeans::Params fp;
    fp.init = clustering::InitStrategy::kRandom;
    clustering::Ukmeans::Params pf;
    pf.init = clustering::InitStrategy::kPlusPlus;
    forgy += clustering::Ukmeans(fp).Cluster(ds, 5, s).objective;
    pp += clustering::Ukmeans(pf).Cluster(ds, 5, s).objective;
  }
  EXPECT_LE(pp, forgy * 1.02);  // on average at least as good
}

TEST(PlusPlusInit, WorksThroughUcpcParams) {
  const auto ds = PlantedDataset(120, 3, 11);
  clustering::Ucpc::Params params;
  params.init = clustering::InitStrategy::kPlusPlus;
  const clustering::Ucpc algo(params);
  const auto r = algo.Cluster(ds, 3, 12);
  EXPECT_EQ(r.clusters_found, 3);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), r.labels), 0.9);
}

// --- silhouette -----------------------------------------------------------

// Brute-force silhouette with explicit pairwise ED^ loops.
double BruteForceSilhouette(const data::UncertainDataset& ds,
                            const std::vector<int>& labels, int k) {
  const std::size_t n = ds.size();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> avg(k, 0.0);
    std::vector<int> count(k, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      avg[labels[j]] +=
          uncertain::ExpectedSquaredDistance(ds.object(i), ds.object(j));
      ++count[labels[j]];
    }
    if (count[labels[i]] == 0) continue;  // singleton
    const double a = avg[labels[i]] / count[labels[i]];
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == labels[i] || count[c] == 0) continue;
      // Note: other clusters include all their members.
      const int full = c == labels[i] ? count[c] : count[c];
      b = std::min(b, avg[c] / full);
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

TEST(Silhouette, AggregateMatchesBruteForce) {
  const auto ds = PlantedDataset(70, 3, 13);
  common::Rng rng(14);
  std::vector<int> labels(ds.size());
  for (auto& l : labels) l = rng.UniformInt(0, 2);
  for (int c = 0; c < 3; ++c) labels[c] = c;
  const auto fast = eval::ExpectedSilhouette(ds.moments(), labels, 3);
  const double brute = BruteForceSilhouette(ds, labels, 3);
  EXPECT_NEAR(fast.mean, brute, 1e-9 * (1.0 + std::fabs(brute)));
}

TEST(Silhouette, GoodPartitionScoresHigherThanRandom) {
  const auto ds = PlantedDataset(150, 3, 15);
  const clustering::Ucpc algo;
  const auto good = algo.Cluster(ds, 3, 16);
  common::Rng rng(17);
  std::vector<int> random_labels(ds.size());
  for (auto& l : random_labels) l = rng.UniformInt(0, 2);
  const double s_good =
      eval::ExpectedSilhouette(ds.moments(), good.labels, 3).mean;
  const double s_rand =
      eval::ExpectedSilhouette(ds.moments(), random_labels, 3).mean;
  EXPECT_GT(s_good, s_rand);
  EXPECT_GE(s_good, -1.0);
  EXPECT_LE(s_good, 1.0);
}

TEST(Silhouette, SingleClusterIsZero) {
  const auto ds = PlantedDataset(30, 2, 19);
  const std::vector<int> labels(ds.size(), 0);
  const auto s = eval::ExpectedSilhouette(ds.moments(), labels, 1);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Silhouette, SingletonClustersGetZeroWidth) {
  const auto ds = PlantedDataset(20, 2, 21);
  std::vector<int> labels(ds.size(), 0);
  labels[5] = 1;  // singleton
  const auto s = eval::ExpectedSilhouette(ds.moments(), labels, 2);
  EXPECT_DOUBLE_EQ(s.widths[5], 0.0);
}

// --- model selection --------------------------------------------------

TEST(ModelSelection, RecoversPlantedKWithSilhouette) {
  const auto ds = PlantedDataset(240, 4, 23);
  const clustering::Ucpc algo;
  const auto sel = eval::SelectK(ds, algo, 2, 7,
                                 eval::SelectionCriterion::kSilhouette, 3, 24);
  EXPECT_EQ(sel.best_k, 4);
  ASSERT_EQ(sel.scores.size(), 6u);
  EXPECT_EQ(sel.scores.front().k, 2);
  EXPECT_EQ(sel.scores.back().k, 7);
}

TEST(ModelSelection, QualityCriterionProducesOrderedSweep) {
  const auto ds = PlantedDataset(120, 3, 25);
  const clustering::Ukmeans algo;
  const auto sel = eval::SelectK(ds, algo, 2, 5,
                                 eval::SelectionCriterion::kQuality, 2, 26);
  EXPECT_GE(sel.best_k, 2);
  EXPECT_LE(sel.best_k, 5);
  int prev_k = 1;
  for (const auto& row : sel.scores) {
    EXPECT_GT(row.k, prev_k);
    prev_k = row.k;
    EXPECT_GE(row.score, -1.0);
    EXPECT_LE(row.score, 1.0);
  }
}

TEST(ModelSelection, DeterministicGivenSeed) {
  const auto ds = PlantedDataset(90, 3, 27);
  const clustering::Ucpc algo;
  const auto a = eval::SelectK(ds, algo, 2, 4,
                               eval::SelectionCriterion::kSilhouette, 2, 28);
  const auto b = eval::SelectK(ds, algo, 2, 4,
                               eval::SelectionCriterion::kSilhouette, 2, 28);
  EXPECT_EQ(a.best_k, b.best_k);
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.scores[i].score, b.scores[i].score);
  }
}

}  // namespace
}  // namespace uclust
