// Tests for the service HTTP front end: the socket-free request parser's
// hardening paths (truncation, oversize, malformed, unsupported framing),
// response rendering, and a real loopback round trip through HttpServer +
// HttpFetch.
#include <gtest/gtest.h>

#include <string>

#include "service/http_client.h"
#include "service/http_server.h"

namespace uclust::service {
namespace {

HttpServerConfig SmallConfig() {
  HttpServerConfig cfg;
  cfg.max_header_bytes = 256;
  cfg.max_body_bytes = 64;
  return cfg;
}

ParseOutcome Parse(const std::string& data, const HttpServerConfig& cfg,
                   HttpRequest* req) {
  std::size_t consumed = 0;
  return ParseHttpRequest(data, cfg, req, &consumed);
}

TEST(ParseHttpRequest, SimpleGet) {
  HttpRequest req;
  std::size_t consumed = 0;
  const std::string data = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(data, SmallConfig(), &req, &consumed),
            ParseOutcome::kDone);
  EXPECT_EQ(consumed, data.size());
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.Header("host"), "x");
}

TEST(ParseHttpRequest, PostWithBody) {
  HttpRequest req;
  std::size_t consumed = 0;
  const std::string data =
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":3}";
  EXPECT_EQ(ParseHttpRequest(data, SmallConfig(), &req, &consumed),
            ParseOutcome::kDone);
  EXPECT_EQ(consumed, data.size());
  EXPECT_EQ(req.body, "{\"k\":3}");
}

TEST(ParseHttpRequest, HeaderNamesLowerCased) {
  HttpRequest req;
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nX-Custom-Thing: v\r\n\r\n",
                  SmallConfig(), &req),
            ParseOutcome::kDone);
  EXPECT_EQ(req.Header("x-custom-thing"), "v");
}

TEST(ParseHttpRequest, TruncatedInputsNeedMore) {
  HttpRequest req;
  const HttpServerConfig cfg = SmallConfig();
  EXPECT_EQ(Parse("", cfg, &req), ParseOutcome::kNeedMore);
  EXPECT_EQ(Parse("GET / HT", cfg, &req), ParseOutcome::kNeedMore);
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nHost: x\r\n", cfg, &req),
            ParseOutcome::kNeedMore);
  // Head complete but the declared body has not fully arrived.
  EXPECT_EQ(Parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", cfg, &req),
            ParseOutcome::kNeedMore);
}

TEST(ParseHttpRequest, MalformedRequestLine) {
  HttpRequest req;
  const HttpServerConfig cfg = SmallConfig();
  EXPECT_EQ(Parse("GET\r\n\r\n", cfg, &req), ParseOutcome::kBad);
  EXPECT_EQ(Parse("GET /x\r\n\r\n", cfg, &req), ParseOutcome::kBad);
  EXPECT_EQ(Parse("GET /x SMTP/1.0\r\n\r\n", cfg, &req), ParseOutcome::kBad);
  // Bare-LF line endings are rejected.
  EXPECT_EQ(Parse("GET / HTTP/1.1\n\n", cfg, &req), ParseOutcome::kBad);
}

TEST(ParseHttpRequest, MalformedHeaders) {
  HttpRequest req;
  const HttpServerConfig cfg = SmallConfig();
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", cfg, &req),
            ParseOutcome::kBad);
  // Obsolete line folding (continuation line) is rejected.
  EXPECT_EQ(
      Parse("GET / HTTP/1.1\r\nA: b\r\n  folded\r\n\r\n", cfg, &req),
      ParseOutcome::kBad);
}

TEST(ParseHttpRequest, ContentLengthStrictness) {
  HttpRequest req;
  const HttpServerConfig cfg = SmallConfig();
  EXPECT_EQ(Parse("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", cfg, &req),
            ParseOutcome::kBad);
  EXPECT_EQ(Parse("POST / HTTP/1.1\r\nContent-Length: 1x\r\n\r\n", cfg, &req),
            ParseOutcome::kBad);
  EXPECT_EQ(
      Parse("POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
            cfg, &req),
      ParseOutcome::kBad);
  // Conflicting duplicates are an attack vector (request smuggling).
  EXPECT_EQ(
      Parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n"
            "\r\nab",
            cfg, &req),
      ParseOutcome::kBad);
}

TEST(ParseHttpRequest, OversizeHeaders) {
  HttpRequest req;
  const HttpServerConfig cfg = SmallConfig();  // 256-byte header cap
  std::string data = "GET / HTTP/1.1\r\nX-Pad: ";
  data.append(512, 'a');
  data += "\r\n\r\n";
  EXPECT_EQ(Parse(data, cfg, &req), ParseOutcome::kHeadersTooLarge);
  // The cap triggers even before the head terminator arrives — a peer
  // streaming an unbounded header line cannot hold a buffer open.
  std::string unfinished = "GET / HTTP/1.1\r\nX-Pad: ";
  unfinished.append(512, 'a');
  EXPECT_EQ(Parse(unfinished, cfg, &req), ParseOutcome::kHeadersTooLarge);
}

TEST(ParseHttpRequest, OversizeBody) {
  HttpRequest req;
  const HttpServerConfig cfg = SmallConfig();  // 64-byte body cap
  const std::string data =
      "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
  EXPECT_EQ(Parse(data, cfg, &req), ParseOutcome::kBodyTooLarge);
}

TEST(ParseHttpRequest, ChunkedUnsupported) {
  HttpRequest req;
  EXPECT_EQ(Parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                  SmallConfig(), &req),
            ParseOutcome::kUnsupported);
}

TEST(RenderHttpResponse, IncludesFramingHeaders) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "{\"error\": \"x\"}";
  const std::string wire = RenderHttpResponse(resp);
  EXPECT_EQ(wire.find("HTTP/1.1 404 Not Found\r\n"), 0u);
  EXPECT_NE(wire.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - resp.body.size()), resp.body);
}

TEST(HttpStatusReasonTest, KnownAndUnknownCodes) {
  EXPECT_STREQ(HttpStatusReason(200), "OK");
  EXPECT_STREQ(HttpStatusReason(429), "Too Many Requests");
  EXPECT_STREQ(HttpStatusReason(431), "Request Header Fields Too Large");
}

// Real sockets: start a server on an ephemeral port, round-trip a request
// through the loopback client, and check the handler saw what was sent.
TEST(HttpServer, LoopbackRoundTrip) {
  HttpServerConfig cfg;
  cfg.worker_threads = 2;
  HttpServer server(cfg, [](const HttpRequest& req) {
    HttpResponse resp;
    if (req.target == "/echo" && req.method == "POST") {
      resp.body = req.body;
    } else if (req.target == "/healthz") {
      resp.body = "{\"status\": \"ok\"}";
    } else {
      resp.status = 404;
      resp.body = "{}";
    }
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto health = HttpFetch(server.port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.ValueOrDie().status, 200);
  EXPECT_EQ(health.ValueOrDie().body, "{\"status\": \"ok\"}");

  auto echo = HttpFetch(server.port(), "POST", "/echo", "{\"payload\": 1}");
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo.ValueOrDie().status, 200);
  EXPECT_EQ(echo.ValueOrDie().body, "{\"payload\": 1}");

  auto missing = HttpFetch(server.port(), "GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.ValueOrDie().status, 404);

  server.Stop();
  // Stop is idempotent.
  server.Stop();
}

}  // namespace
}  // namespace uclust::service
