// End-to-end integration tests: all seven algorithms through the shared
// Clusterer interface, the Theta protocol across pdf families, and the
// paper's headline qualitative claims on small workloads.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <set>

#include "clustering/basic_ukmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/uahc.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "data/benchmark_gen.h"
#include "data/microarray_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "eval/internal.h"
#include "eval/protocol.h"

namespace uclust {
namespace {

using clustering::Clusterer;
using clustering::ClusteringResult;

std::vector<std::unique_ptr<Clusterer>> AllAlgorithms() {
  std::vector<std::unique_ptr<Clusterer>> algos;
  algos.push_back(std::make_unique<clustering::Fdbscan>());
  algos.push_back(std::make_unique<clustering::Foptics>());
  algos.push_back(std::make_unique<clustering::Uahc>());
  algos.push_back(std::make_unique<clustering::UkMedoids>());
  algos.push_back(std::make_unique<clustering::Ukmeans>());
  algos.push_back(std::make_unique<clustering::Mmvar>());
  algos.push_back(std::make_unique<clustering::Ucpc>());
  return algos;
}

data::UncertainDataset SmallBenchmark(uint64_t seed) {
  auto d = data::MakeBenchmarkDataset("Iris", seed).ValueOrDie();
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

TEST(Integration, AllAlgorithmsProduceValidPartitions) {
  const auto ds = SmallBenchmark(1);
  for (const auto& algo : AllAlgorithms()) {
    SCOPED_TRACE(algo->name());
    const ClusteringResult r = algo->Cluster(ds, 3, 2);
    ASSERT_EQ(r.labels.size(), ds.size());
    for (int l : r.labels) {
      EXPECT_GE(l, 0);
      EXPECT_LT(l, r.clusters_found);
    }
    EXPECT_GE(r.clusters_found, 1);
    EXPECT_GE(r.online_ms, 0.0);
  }
}

TEST(Integration, AllAlgorithmsBeatRandomAssignment) {
  const auto ds = SmallBenchmark(3);
  common::Rng rng(4);
  std::vector<int> random_labels(ds.size());
  for (auto& l : random_labels) l = rng.UniformInt(0, 2);
  const double f_random = eval::FMeasure(ds.labels(), random_labels);
  for (const auto& algo : AllAlgorithms()) {
    SCOPED_TRACE(algo->name());
    const ClusteringResult r = algo->Cluster(ds, 3, 5);
    EXPECT_GT(eval::FMeasure(ds.labels(), r.labels), f_random);
  }
}

TEST(Integration, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const auto& algo : AllAlgorithms()) names.insert(algo->name());
  EXPECT_EQ(names.size(), 7u);
  EXPECT_TRUE(names.count("UCPC"));
  EXPECT_TRUE(names.count("UK-means"));
  EXPECT_TRUE(names.count("MMVar"));
  EXPECT_TRUE(names.count("UK-medoids"));
  EXPECT_TRUE(names.count("UAHC"));
  EXPECT_TRUE(names.count("FDBSCAN"));
  EXPECT_TRUE(names.count("FOPTICS"));
}

TEST(Integration, ThetaProtocolRunsForAllFamilies) {
  auto d = data::MakeBenchmarkDataset("Iris", 7).ValueOrDie();
  const clustering::Ucpc algo;
  for (auto family : {data::PdfFamily::kUniform, data::PdfFamily::kNormal,
                      data::PdfFamily::kExponential}) {
    data::UncertaintyParams up;
    up.family = family;
    const eval::ThetaSummary s = eval::RunThetaProtocol(d, up, algo, 3, 2, 8);
    EXPECT_GE(s.theta, -1.0);
    EXPECT_LE(s.theta, 1.0);
  }
}

TEST(Integration, UcpcHandlesHighVarianceDataBetterThanUkmeans) {
  // The paper's headline claim in miniature: with heterogeneous, large
  // uncertainty, UCPC's variance-aware objective should not lose to
  // UK-means on uncertainty-aware clustering quality (averaged over seeds).
  data::MixtureParams params;
  params.n = 240;
  params.dims = 2;
  params.classes = 3;
  params.sigma_min = 0.03;
  params.sigma_max = 0.05;
  params.min_separation = 0.4;
  const auto d = data::MakeGaussianMixture(params, 9, "hv");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  up.min_scale_frac = 0.05;
  up.max_scale_frac = 0.25;  // heavy, heterogeneous uncertainty
  const auto ds = data::UncertaintyModel(d, up, 10).Uncertain();

  const clustering::Ucpc ucpc;
  const clustering::Ukmeans ukm;
  double f_ucpc = 0.0, f_ukm = 0.0;
  const int runs = 10;
  for (uint64_t s = 0; s < runs; ++s) {
    f_ucpc += eval::FMeasure(ds.labels(), ucpc.Cluster(ds, 3, s).labels);
    f_ukm += eval::FMeasure(ds.labels(), ukm.Cluster(ds, 3, s).labels);
  }
  EXPECT_GE(f_ucpc / runs, f_ukm / runs - 0.05);
}

TEST(Integration, MicroarrayPipelineEndToEnd) {
  // A miniature Table-3 cell: microarray data -> UCPC vs MMVar -> Q.
  auto ds = data::MakeMicroarrayByName("Neuroblastoma", 11, 0.01)
                .ValueOrDie();
  const clustering::Ucpc ucpc;
  const clustering::Mmvar mmv;
  const ClusteringResult ru = ucpc.Cluster(ds, 5, 12);
  const ClusteringResult rm = mmv.Cluster(ds, 5, 12);
  const double qu = eval::EvaluateInternal(ds.moments(), ru.labels, 5).q;
  const double qm = eval::EvaluateInternal(ds.moments(), rm.labels, 5).q;
  EXPECT_GE(qu, -1.0);
  EXPECT_LE(qu, 1.0);
  EXPECT_GE(qm, -1.0);
  EXPECT_LE(qm, 1.0);
}

TEST(Integration, FastAlgorithmsScaleLinearly) {
  // Smoke check of the complexity claim: doubling n must not blow up the
  // runtime superlinearly for the O(I k n m) algorithms (coarse bound to
  // avoid flakiness on shared hardware).
  auto make = [](std::size_t n) {
    data::MixtureParams p;
    p.n = n;
    p.dims = 4;
    p.classes = 4;
    const auto d = data::MakeGaussianMixture(p, 13, "scale");
    data::UncertaintyParams up;
    return data::UncertaintyModel(d, up, 14).Uncertain();
  };
  const auto small = make(500);
  const auto large = make(2000);
  const clustering::Ucpc algo;
  const auto rs = algo.Cluster(small, 4, 15);
  const auto rl = algo.Cluster(large, 4, 15);
  ASSERT_EQ(rl.labels.size(), 2000u);
  // Only sanity: both finish quickly and report times.
  EXPECT_GE(rs.online_ms, 0.0);
  EXPECT_GE(rl.online_ms, 0.0);
}

TEST(Integration, DiracDegenerationMakesCase1Meaningful) {
  // On Dirac-wrapped deterministic data, UCPC and UK-means optimize the
  // same function (J = J_UK when all variances vanish); their objectives
  // after convergence from the same seed must be close.
  auto d = data::MakeBenchmarkDataset("Iris", 17).ValueOrDie();
  const auto ds = data::UncertainDataset::FromDeterministic(d);
  const clustering::Ucpc ucpc;
  const clustering::Ukmeans ukm;
  double best_ucpc = std::numeric_limits<double>::infinity();
  double best_ukm = std::numeric_limits<double>::infinity();
  for (uint64_t s = 0; s < 5; ++s) {
    best_ucpc = std::min(best_ucpc, ucpc.Cluster(ds, 3, s).objective);
    best_ukm = std::min(best_ukm, ukm.Cluster(ds, 3, s).objective);
  }
  EXPECT_NEAR(best_ucpc, best_ukm, 0.15 * best_ukm);
}

}  // namespace
}  // namespace uclust
