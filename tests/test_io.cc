// Tests for the binary dataset format (src/io/) and the streaming moment
// ingestion path (uncertain::DatasetBuilder + io::FileObjectSource):
// write -> read round trips reproduce moments bit-for-bit, streamed
// ingestion equals the in-memory builder at any batch size and thread
// count, and malformed files (endianness, version, magic, truncation) are
// rejected instead of mis-parsed.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "engine/engine.h"
#include "io/binary_format.h"
#include "io/dataset_reader.h"
#include "io/dataset_writer.h"
#include "io/ingest.h"
#include "uncertain/dataset_builder.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/exponential_pdf.h"
#include "uncertain/moments.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

namespace uclust {
namespace {

using uncertain::DatasetBuilder;
using uncertain::MomentMatrix;
using uncertain::PdfPtr;
using uncertain::UncertainObject;

std::string TempPath(const std::string& file) {
  return ::testing::TempDir() + file;
}

// Objects cycling through every serializable pdf family, with irregular
// parameters (non-uniform discrete weights included).
std::vector<UncertainObject> MakeTestObjects(std::size_t n, std::size_t m,
                                             uint64_t seed) {
  std::vector<UncertainObject> objects;
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<PdfPtr> dims;
    for (std::size_t j = 0; j < m; ++j) {
      const double w = rng.Uniform(-3.0, 3.0);
      const double scale = rng.Uniform(0.05, 0.4);
      switch ((i + j) % 5) {
        case 0:
          dims.push_back(uncertain::UniformPdf::Centered(w, scale));
          break;
        case 1:
          dims.push_back(uncertain::TruncatedNormalPdf::Make(w, scale));
          break;
        case 2:
          dims.push_back(uncertain::TruncatedExponentialPdf::Make(w, 1.0 / scale));
          break;
        case 3:
          dims.push_back(uncertain::DiracPdf::Make(w));
          break;
        default: {
          std::vector<double> values, weights;
          for (int s = 0; s < 4; ++s) {
            values.push_back(w + rng.Uniform(-scale, scale));
            weights.push_back(rng.Uniform(0.1, 2.0));
          }
          dims.push_back(std::make_shared<uncertain::DiscretePdf>(
              std::move(values), std::move(weights)));
        }
      }
    }
    objects.emplace_back(std::move(dims));
  }
  return objects;
}

// Writes `objects` (with labels i % 3) to a fresh file and returns its path.
std::string WriteTestFile(const std::string& file,
                          const std::vector<UncertainObject>& objects,
                          int num_classes = 3) {
  const std::string path = TempPath(file);
  io::BinaryDatasetWriter writer;
  EXPECT_TRUE(writer
                  .Open(path, objects[0].dims(), "io-test", num_classes,
                        /*with_labels=*/true)
                  .ok());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_TRUE(writer.Append(objects[i], static_cast<int>(i % 3)).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

void ExpectBitIdentical(const MomentMatrix& a, const MomentMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dims(), b.dims());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(a.mean(i).data(), b.mean(i).data(),
                             a.dims() * sizeof(double)))
        << "mean row " << i;
    ASSERT_EQ(0, std::memcmp(a.second_moment(i).data(),
                             b.second_moment(i).data(),
                             a.dims() * sizeof(double)))
        << "mu2 row " << i;
    ASSERT_EQ(0, std::memcmp(a.variance(i).data(), b.variance(i).data(),
                             a.dims() * sizeof(double)))
        << "var row " << i;
    ASSERT_EQ(a.total_variance(i), b.total_variance(i)) << "total var " << i;
  }
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
}

TEST(BinaryFormatTest, RoundTripReproducesEverythingBitIdentically) {
  const auto objects = MakeTestObjects(37, 3, /*seed=*/11);
  const std::string path = WriteTestFile("roundtrip.ubin", objects);

  auto loaded = io::ReadUncertainDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const data::UncertainDataset ds = std::move(loaded).ValueOrDie();

  EXPECT_EQ("io-test", ds.name());
  EXPECT_EQ(3, ds.num_classes());
  ASSERT_EQ(objects.size(), ds.size());
  ASSERT_EQ(objects.size(), ds.labels().size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(static_cast<int>(i % 3), ds.labels()[i]);
    const UncertainObject& a = objects[i];
    const UncertainObject& b = ds.object(i);
    ASSERT_EQ(a.dims(), b.dims());
    for (std::size_t j = 0; j < a.dims(); ++j) {
      EXPECT_STREQ(a.pdf(j).TypeName(), b.pdf(j).TypeName());
      // Bit-exact: the format stores constructor-exact parameters, so every
      // derived quantity is recomputed identically.
      EXPECT_EQ(a.mean()[j], b.mean()[j]) << "object " << i << " dim " << j;
      EXPECT_EQ(a.second_moment()[j], b.second_moment()[j]);
      EXPECT_EQ(a.variance()[j], b.variance()[j]);
      EXPECT_EQ(a.pdf(j).lower(), b.pdf(j).lower());
      EXPECT_EQ(a.pdf(j).upper(), b.pdf(j).upper());
    }
    EXPECT_EQ(a.total_variance(), b.total_variance());
  }
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, StreamedIngestionMatchesInMemoryBuilder) {
  const auto objects = MakeTestObjects(101, 4, /*seed=*/23);
  const std::string path = WriteTestFile("streamed.ubin", objects);
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);

  engine::EngineConfig threaded;
  threaded.num_threads = 4;
  threaded.block_size = 8;
  const engine::Engine engines[] = {engine::Engine::Serial(),
                                    engine::Engine(threaded)};
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                  std::size_t{32}, std::size_t{1000}}) {
    for (const engine::Engine& eng : engines) {
      std::vector<int> labels;
      auto streamed = io::StreamMomentsFromFile(path, eng, batch, &labels);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      const MomentMatrix mm = std::move(streamed).ValueOrDie();
      ExpectBitIdentical(reference, mm);
      ASSERT_EQ(objects.size(), labels.size());
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetBuilderTest, BatchPartitionAndThreadCountInvariance) {
  const auto objects = MakeTestObjects(53, 3, /*seed=*/31);
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);

  engine::EngineConfig threaded;
  threaded.num_threads = 3;
  threaded.block_size = 4;
  const engine::Engine engines[] = {engine::Engine::Serial(),
                                    engine::Engine(threaded)};
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{5}, std::size_t{53}, std::size_t{60}}) {
    for (const engine::Engine& eng : engines) {
      DatasetBuilder builder(eng);
      for (std::size_t start = 0; start < objects.size(); start += batch) {
        const std::size_t count = std::min(batch, objects.size() - start);
        builder.AddBatch({objects.data() + start, count});
      }
      ExpectBitIdentical(reference, builder.Build());
    }
  }

  // The dataset's own accessor now routes through the same builder.
  std::vector<UncertainObject> copy = objects;
  const data::UncertainDataset ds("builder-test", std::move(copy), {}, 0);
  ExpectBitIdentical(reference, ds.moments());
}

TEST(BinaryFormatTest, RejectsForeignEndianFiles) {
  const auto objects = MakeTestObjects(3, 2, /*seed=*/5);
  const std::string path = WriteTestFile("endian.ubin", objects);
  std::vector<char> bytes = ReadFileBytes(path);
  const uint32_t swapped = io::kEndianTagSwapped;
  std::memcpy(bytes.data() + 8, &swapped, sizeof(swapped));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  const common::Status st = reader.Open(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.message().find("endian")) << st.ToString();
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsNewerFormatVersions) {
  const auto objects = MakeTestObjects(3, 2, /*seed=*/5);
  const std::string path = WriteTestFile("version.ubin", objects);
  std::vector<char> bytes = ReadFileBytes(path);
  const uint32_t future = io::kFormatVersion + 41;
  std::memcpy(bytes.data() + 12, &future, sizeof(future));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  const common::Status st = reader.Open(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.message().find("version")) << st.ToString();
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsBadMagicAndShortFiles) {
  const std::string path = TempPath("magic.ubin");
  WriteFileBytes(path, std::vector<char>(128, 'x'));
  io::BinaryDatasetReader reader;
  EXPECT_FALSE(reader.Open(path).ok());

  WriteFileBytes(path, std::vector<char>(10, 'x'));
  io::BinaryDatasetReader short_reader;
  EXPECT_FALSE(short_reader.Open(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsTruncatedObjectRecords) {
  const auto objects = MakeTestObjects(8, 3, /*seed=*/17);
  const std::string path = WriteTestFile("trunc.ubin", objects);
  std::vector<char> bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() / 2);
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());  // header is intact
  std::vector<UncertainObject> batch;
  common::Status st = common::Status::Ok();
  while (reader.remaining() > 0) {
    st = reader.ReadBatch(4, &batch);
    if (!st.ok()) break;
  }
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

// Writes one single-dimension object so record offsets are computable:
// header (64) + name ("io-test", 7) + u32 payload, then the pdf record.
std::string WriteSingleObjectFile(const std::string& file, PdfPtr pdf) {
  const std::string path = TempPath(file);
  io::BinaryDatasetWriter writer;
  EXPECT_TRUE(writer.Open(path, 1, "io-test", 2, /*with_labels=*/true).ok());
  std::vector<PdfPtr> dims{std::move(pdf)};
  EXPECT_TRUE(writer.Append(UncertainObject(std::move(dims)), 1).ok());
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

constexpr std::size_t kRecordStart = 64 + 7;  // header + "io-test"

TEST(BinaryFormatTest, RejectsOversizedDiscreteCountWithoutAllocating) {
  const std::string path = WriteSingleObjectFile(
      "hugecount.ubin", uncertain::DiscretePdf::Uniformly({1.0, 2.0, 3.0}));
  std::vector<char> bytes = ReadFileBytes(path);
  // Record layout: u32 payload, u8 tag (kPdfDiscrete), u32 count, ...
  const uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + kRecordStart + 5, &huge, sizeof(huge));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<UncertainObject> batch;
  // Must fail with a Status — not std::bad_alloc from a ~64 GB vector.
  EXPECT_FALSE(reader.ReadBatch(1, &batch).ok());
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsDiscreteWeightsThatDoNotSumToOne) {
  const std::string path = WriteSingleObjectFile(
      "badweights.ubin", uncertain::DiscretePdf::Uniformly({1.0, 2.0}));
  std::vector<char> bytes = ReadFileBytes(path);
  // First weight sits after payload(4) + tag(1) + count(4) + 2 values(16).
  const double bogus = 7.5;
  std::memcpy(bytes.data() + kRecordStart + 25, &bogus, sizeof(bogus));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<UncertainObject> batch;
  EXPECT_FALSE(reader.ReadBatch(1, &batch).ok());
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsDegenerateNormalHalfWidth) {
  const std::string path = WriteSingleObjectFile(
      "tinyc.ubin", uncertain::TruncatedNormalPdf::Make(0.5, 0.1));
  std::vector<char> bytes = ReadFileBytes(path);
  // Half-width field sits after payload(4) + tag(1) + mu(8) + sigma(8); a
  // sub-1e-16 value would make the truncated-variance formula emit -inf.
  const double tiny = 1e-20;
  std::memcpy(bytes.data() + kRecordStart + 21, &tiny, sizeof(tiny));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<UncertainObject> batch;
  EXPECT_FALSE(reader.ReadBatch(1, &batch).ok());
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsObjectCountInconsistentWithFileSize) {
  const auto objects = MakeTestObjects(3, 2, /*seed=*/5);
  const std::string path = WriteTestFile("hugen.ubin", objects);
  std::vector<char> bytes = ReadFileBytes(path);
  const uint64_t huge_n = uint64_t{1} << 40;  // far beyond the file's bytes
  std::memcpy(bytes.data() + 16, &huge_n, sizeof(huge_n));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  EXPECT_FALSE(reader.Open(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, RejectsNameLengthInconsistentWithFileSize) {
  const auto objects = MakeTestObjects(3, 2, /*seed=*/5);
  const std::string path = WriteTestFile("hugename.ubin", objects);
  std::vector<char> bytes = ReadFileBytes(path);
  const uint32_t huge_len = 0xffffffffu;
  std::memcpy(bytes.data() + 48, &huge_len, sizeof(huge_len));
  WriteFileBytes(path, bytes);

  io::BinaryDatasetReader reader;
  // Must fail with a Status — not a ~4 GB string allocation.
  EXPECT_FALSE(reader.Open(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryFormatTest, ReadLabelsDoesNotDisturbBatchStreaming) {
  const auto objects = MakeTestObjects(20, 2, /*seed=*/41);
  const std::string path = WriteTestFile("labels.ubin", objects);

  io::BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<UncertainObject> batch;
  ASSERT_TRUE(reader.ReadBatch(7, &batch).ok());
  ASSERT_EQ(7u, batch.size());

  std::vector<int> labels;
  ASSERT_TRUE(reader.ReadLabels(&labels).ok());  // mid-stream
  ASSERT_EQ(objects.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(static_cast<int>(i % 3), labels[i]);
  }

  std::size_t streamed = batch.size();
  while (reader.remaining() > 0) {
    ASSERT_TRUE(reader.ReadBatch(7, &batch).ok());
    for (const auto& o : batch) {
      EXPECT_EQ(objects[streamed].mean()[0], o.mean()[0]);
      ++streamed;
    }
  }
  EXPECT_EQ(objects.size(), streamed);
  std::remove(path.c_str());
}

TEST(BinaryDatasetWriterTest, ValidatesArguments) {
  io::BinaryDatasetWriter writer;
  EXPECT_FALSE(writer.Open(TempPath("bad.ubin"), 0, "x", 0, false).ok());
  EXPECT_FALSE(writer.Open(TempPath("bad.ubin"), 2, "x", 3, false).ok());

  io::BinaryDatasetWriter labeled;
  const std::string path = TempPath("validate.ubin");
  ASSERT_TRUE(labeled.Open(path, 2, "x", 2, true).ok());
  const auto objects = MakeTestObjects(2, 2, /*seed=*/3);
  EXPECT_FALSE(labeled.Append(objects[0], -1).ok());  // label required
  const auto wrong_dims = MakeTestObjects(1, 3, /*seed=*/3);
  EXPECT_FALSE(labeled.Append(wrong_dims[0], 0).ok());
  EXPECT_TRUE(labeled.Append(objects[0], 0).ok());
  EXPECT_TRUE(labeled.Append(objects[1], 1).ok());
  EXPECT_TRUE(labeled.Finish().ok());
  EXPECT_EQ(2u, labeled.written());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uclust
