// Unit tests for the shared JSON layer (common/json.h): the incremental
// writer the benches and the service both emit through, and the strict
// parser behind the service's request bodies.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/json.h"

namespace uclust::common {
namespace {

TEST(JsonWriter, ObjectWithScalars) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "uclust");
  w.KV("n", 42);
  w.KV("ratio", 0.5);
  w.KV("ok", true);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\": \"uclust\", \"n\": 42, \"ratio\": 0.5, \"ok\": true}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  w.BeginObject();
  w.KV("i", 1);
  w.EndObject();
  w.BeginObject();
  w.KV("i", 2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"rows\": [{\"i\": 1}, {\"i\": 2}]}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.Value(std::string("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriter, ExactDoubleRoundTrips) {
  JsonWriter w;
  w.ValueExact(352.23825496742165);
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().AsDouble(), 352.23825496742165);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.Value(std::numeric_limits<double>::infinity());
  EXPECT_EQ(w.str(), "null");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject();
  w.Key("result");
  w.Raw("{\"k\": 3}");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"result\": {\"k\": 3}}");
}

TEST(ParseJson, Scalars) {
  EXPECT_TRUE(ParseJson("null").ValueOrDie().is_null());
  EXPECT_EQ(ParseJson("true").ValueOrDie().AsBool(), true);
  EXPECT_EQ(ParseJson("-17").ValueOrDie().AsInt(), -17);
  EXPECT_EQ(ParseJson("2.5e3").ValueOrDie().AsDouble(), 2500.0);
  EXPECT_EQ(ParseJson("\"hi\"").ValueOrDie().AsString(), "hi");
}

TEST(ParseJson, ObjectPreservesDocumentOrderAndFindTakesLast) {
  Result<JsonValue> parsed =
      ParseJson("{\"a\": 1, \"b\": 2, \"a\": 3}");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& obj = parsed.ValueOrDie();
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "a");
  EXPECT_EQ(obj.members()[1].first, "b");
  EXPECT_EQ(obj.members()[2].first, "a");
  // Later keys override — the service's knob-application rule.
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->AsInt(), 3);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(ParseJson, NestedStructure) {
  Result<JsonValue> parsed = ParseJson(
      "{\"engine\": {\"threads\": 4}, \"ids\": [1, 2, 3]}");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& obj = parsed.ValueOrDie();
  ASSERT_NE(obj.Find("engine"), nullptr);
  EXPECT_EQ(obj.Find("engine")->Find("threads")->AsInt(), 4);
  ASSERT_EQ(obj.Find("ids")->items().size(), 3u);
  EXPECT_EQ(obj.Find("ids")->items()[2].AsInt(), 3);
}

TEST(ParseJson, StringEscapes) {
  EXPECT_EQ(ParseJson("\"a\\n\\t\\\"b\\\\\"").ValueOrDie().AsString(),
            "a\n\t\"b\\");
  // \u escapes decode to UTF-8; surrogate pairs combine.
  EXPECT_EQ(ParseJson("\"\\u0041\"").ValueOrDie().AsString(), "A");
  EXPECT_EQ(ParseJson("\"\\u00e9\"").ValueOrDie().AsString(), "\xc3\xa9");
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"").ValueOrDie().AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(ParseJson, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{'a': 1}").ok());
  EXPECT_FALSE(ParseJson("01").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(ParseJson, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  // Trailing whitespace alone is fine.
  EXPECT_TRUE(ParseJson("{}  \n").ok());
}

TEST(ParseJson, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string fine;
  for (int i = 0; i < 32; ++i) fine += '[';
  for (int i = 0; i < 32; ++i) fine += ']';
  EXPECT_TRUE(ParseJson(fine).ok());
}

TEST(ParseJson, ErrorsCarryByteOffsets) {
  Result<JsonValue> parsed = ParseJson("{\"a\": !}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("at byte"), std::string::npos);
}

TEST(ParseJson, WriterOutputRoundTrips) {
  JsonWriter w;
  w.BeginObject();
  w.KV("algorithm", "CK-means");
  w.Key("engine");
  w.BeginObject();
  w.KV("threads", 4);
  w.KV("simd_isa", "auto");
  w.EndObject();
  w.EndObject();
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().Find("algorithm")->AsString(), "CK-means");
  EXPECT_EQ(parsed.ValueOrDie().Find("engine")->Find("threads")->AsInt(), 4);
}

}  // namespace
}  // namespace uclust::common
