// Tests for the relocation local search (Algorithm 1) and its UCPC / MMVar
// wrappers: convergence, objective monotonicity, cluster-count invariants,
// determinism, and recovery of planted structure.
#include <gtest/gtest.h>

#include <set>

#include "clustering/cluster_stats.h"
#include "clustering/init.h"
#include "clustering/local_search.h"
#include "clustering/mmvar.h"
#include "clustering/ucpc.h"
#include "common/rng.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"

namespace uclust::clustering {
namespace {

using uncertain::MomentMatrix;

// Planted mixture wrapped in mild Normal uncertainty.
data::UncertainDataset PlantedDataset(std::size_t n, std::size_t m,
                                      int classes, uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = m;
  params.classes = classes;
  params.sigma_min = 0.02;
  params.sigma_max = 0.04;
  params.min_separation = 0.5;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  const data::UncertaintyModel model(d, up, seed + 1);
  return model.Uncertain();
}

class LocalSearchObjective : public ::testing::TestWithParam<ObjectiveKind> {
};

TEST_P(LocalSearchObjective, ProducesExactlyKNonEmptyClusters) {
  const auto ds = PlantedDataset(120, 3, 4, 1);
  const MomentMatrix& mm = ds.moments();
  LocalSearchParams params;
  params.objective = GetParam();
  common::Rng rng(2);
  const LocalSearchOutcome out = RunLocalSearch(mm, 4, params, &rng);
  ASSERT_EQ(out.labels.size(), 120u);
  const auto sizes = ClusterSizes(out.labels, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GT(sizes[c], 0u) << "cluster " << c << " is empty";
  }
  EXPECT_EQ(CountClusters(out.labels), 4);
}

TEST_P(LocalSearchObjective, ObjectiveNeverIncreasesFromInitialPartition) {
  const auto ds = PlantedDataset(80, 2, 3, 3);
  const MomentMatrix& mm = ds.moments();
  common::Rng rng(4);
  std::vector<int> init = RandomPartition(mm.size(), 3, &rng);
  const double before = TotalObjective(GetParam(), mm, init, 3);
  LocalSearchParams params;
  params.objective = GetParam();
  const LocalSearchOutcome out = RunLocalSearchFrom(mm, 3, params, init);
  EXPECT_LE(out.objective, before + 1e-9);
  // Reported objective matches an independent recomputation from labels.
  EXPECT_NEAR(out.objective, TotalObjective(GetParam(), mm, out.labels, 3),
              1e-9 * (1.0 + out.objective));
}

TEST_P(LocalSearchObjective, ConvergedStateIsOneMoveOptimal) {
  // After convergence no single relocation can strictly improve the
  // objective (local optimality, Proposition 4's fixed point).
  const auto ds = PlantedDataset(60, 2, 3, 5);
  const MomentMatrix& mm = ds.moments();
  LocalSearchParams params;
  params.objective = GetParam();
  common::Rng rng(6);
  const LocalSearchOutcome out = RunLocalSearch(mm, 3, params, &rng);

  std::vector<ClusterMoments> stats(3, ClusterMoments(mm.dims()));
  for (std::size_t i = 0; i < mm.size(); ++i) {
    stats[out.labels[i]].Add(mm, i);
  }
  for (std::size_t i = 0; i < mm.size(); ++i) {
    const int src = out.labels[i];
    if (stats[src].size() <= 1) continue;
    const double j_src = Objective(params.objective, stats[src]);
    const double j_src_minus =
        ObjectiveAfterRemove(params.objective, stats[src], mm, i);
    for (int c = 0; c < 3; ++c) {
      if (c == src) continue;
      const double j_c = Objective(params.objective, stats[c]);
      const double j_c_plus =
          ObjectiveAfterAdd(params.objective, stats[c], mm, i);
      const double delta = (j_src_minus + j_c_plus) - (j_src + j_c);
      EXPECT_GE(delta, -1e-7 * (1.0 + out.objective))
          << "object " << i << " -> cluster " << c;
    }
  }
}

TEST_P(LocalSearchObjective, DeterministicGivenSeed) {
  const auto ds = PlantedDataset(100, 3, 4, 7);
  const MomentMatrix& mm = ds.moments();
  LocalSearchParams params;
  params.objective = GetParam();
  common::Rng rng_a(11), rng_b(11);
  const auto a = RunLocalSearch(mm, 4, params, &rng_a);
  const auto b = RunLocalSearch(mm, 4, params, &rng_b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.passes, b.passes);
}

TEST_P(LocalSearchObjective, RespectsMaxPasses) {
  const auto ds = PlantedDataset(200, 4, 5, 9);
  LocalSearchParams params;
  params.objective = GetParam();
  params.max_passes = 1;
  common::Rng rng(10);
  const auto out = RunLocalSearch(ds.moments(), 5, params, &rng);
  EXPECT_LE(out.passes, 1);
}

std::string ObjectiveName(
    const ::testing::TestParamInfo<ObjectiveKind>& param_info) {
  const std::string raw = ObjectiveKindName(param_info.param);
  return raw == "UK-means" ? "UKmeans" : raw;
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, LocalSearchObjective,
                         ::testing::Values(ObjectiveKind::kUcpc,
                                           ObjectiveKind::kMmvar,
                                           ObjectiveKind::kUkmeans),
                         ObjectiveName);

TEST(LocalSearch, KEqualsOneKeepsEverything) {
  const auto ds = PlantedDataset(30, 2, 2, 13);
  LocalSearchParams params;
  common::Rng rng(14);
  const auto out = RunLocalSearch(ds.moments(), 1, params, &rng);
  for (int l : out.labels) EXPECT_EQ(l, 0);
}

TEST(LocalSearch, KEqualsNMakesSingletons) {
  const auto ds = PlantedDataset(12, 2, 2, 15);
  LocalSearchParams params;
  common::Rng rng(16);
  const auto out = RunLocalSearch(ds.moments(), 12, params, &rng);
  const auto sizes = ClusterSizes(out.labels, 12);
  for (auto s : sizes) EXPECT_EQ(s, 1u);
}

TEST(Ucpc, RecoversPlantedClusters) {
  const auto ds = PlantedDataset(240, 3, 3, 17);
  const Ucpc algo;
  const ClusteringResult result = algo.Cluster(ds, 3, 18);
  EXPECT_EQ(result.clusters_found, 3);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), result.labels), 0.9);
  EXPECT_GT(result.iterations, 0);
}

TEST(Ucpc, KernelAgreesWithClustererInterface) {
  const auto ds = PlantedDataset(90, 2, 3, 19);
  const Ucpc algo;
  const ClusteringResult via_interface = algo.Cluster(ds, 3, 20);
  const LocalSearchOutcome via_kernel =
      Ucpc::RunOnMoments(ds.moments(), 3, 20);
  EXPECT_EQ(via_interface.labels, via_kernel.labels);
  EXPECT_DOUBLE_EQ(via_interface.objective, via_kernel.objective);
}

TEST(Ucpc, NameAndDiagnostics) {
  const Ucpc algo;
  EXPECT_EQ(algo.name(), "UCPC");
  const auto ds = PlantedDataset(40, 2, 2, 21);
  const ClusteringResult r = algo.Cluster(ds, 2, 22);
  EXPECT_EQ(r.k_requested, 2);
  EXPECT_GE(r.online_ms, 0.0);
  EXPECT_EQ(r.ed_evaluations, 0);  // closed-form algorithm
}

TEST(Mmvar, RecoversPlantedClusters) {
  const auto ds = PlantedDataset(240, 3, 3, 23);
  const Mmvar algo;
  const ClusteringResult result = algo.Cluster(ds, 3, 24);
  EXPECT_EQ(result.clusters_found, 3);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), result.labels), 0.85);
}

TEST(Mmvar, ObjectiveIsMixtureVarianceSum) {
  const auto ds = PlantedDataset(60, 2, 2, 25);
  const Mmvar algo;
  const ClusteringResult r = algo.Cluster(ds, 2, 26);
  EXPECT_NEAR(r.objective,
              TotalObjective(ObjectiveKind::kMmvar, ds.moments(), r.labels, 2),
              1e-9 * (1.0 + r.objective));
}

TEST(UcpcVsMmvar, ObjectivesDisagreeInGeneral) {
  // Although J_MM is proportional to J_UK per cluster, the *sums* over a
  // clustering weight clusters differently, so the two algorithms are not
  // the same algorithm. Sanity check: on a dataset with heavy variance
  // structure the final partitions typically differ for at least one seed.
  const auto ds = PlantedDataset(150, 2, 3, 27);
  bool differ = false;
  for (uint64_t seed = 0; seed < 5 && !differ; ++seed) {
    const auto u = Ucpc::RunOnMoments(ds.moments(), 3, seed);
    const auto m = Mmvar::RunOnMoments(ds.moments(), 3, seed);
    differ = u.labels != m.labels;
  }
  SUCCEED();  // structural smoke check; equality is permitted but unlikely
}

}  // namespace
}  // namespace uclust::clustering
