// Tests for the MomentStore abstraction: the Resident and Mapped backends
// serve bit-identical statistics (element-wise and through whole clustering
// runs at several thread counts), corrupt/truncated/foreign-endian .umom
// sidecars are rejected instead of mis-parsed, chunk boundaries are exact
// for any n (divisible by chunk_rows or not), sidecar reuse honors the
// staleness guard, and DatasetBuilder's spill mode equals the resident
// builder for any batch partition.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clustering/mmvar.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "io/binary_format.h"
#include "io/dataset_writer.h"
#include "io/ingest.h"
#include "io/mmap_file.h"
#include "io/moment_file.h"
#include "io/moment_format.h"
#include "uncertain/dataset_builder.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/exponential_pdf.h"
#include "uncertain/moment_store.h"
#include "uncertain/moments.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/uniform_pdf.h"

namespace uclust {
namespace {

using uncertain::DatasetBuilder;
using uncertain::MomentBackend;
using uncertain::MomentMatrix;
using uncertain::MomentStorePtr;
using uncertain::MomentView;
using uncertain::PdfPtr;
using uncertain::UncertainObject;

std::string TempPath(const std::string& file) {
  return ::testing::TempDir() + file;
}

// Objects cycling through every serializable pdf family (mirrors
// tests/test_io.cc so the sidecar sees irregular parameters).
std::vector<UncertainObject> MakeTestObjects(std::size_t n, std::size_t m,
                                             uint64_t seed) {
  std::vector<UncertainObject> objects;
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<PdfPtr> dims;
    for (std::size_t j = 0; j < m; ++j) {
      const double w = rng.Uniform(-3.0, 3.0);
      const double scale = rng.Uniform(0.05, 0.4);
      switch ((i + j) % 4) {
        case 0:
          dims.push_back(uncertain::UniformPdf::Centered(w, scale));
          break;
        case 1:
          dims.push_back(uncertain::TruncatedNormalPdf::Make(w, scale));
          break;
        case 2:
          dims.push_back(
              uncertain::TruncatedExponentialPdf::Make(w, 1.0 / scale));
          break;
        default:
          dims.push_back(uncertain::DiracPdf::Make(w));
      }
    }
    objects.emplace_back(std::move(dims));
  }
  return objects;
}

std::string WriteTestFile(const std::string& file,
                          const std::vector<UncertainObject>& objects) {
  const std::string path = TempPath(file);
  io::BinaryDatasetWriter writer;
  EXPECT_TRUE(writer
                  .Open(path, objects[0].dims(), "moment-store-test", 3,
                        /*with_labels=*/true)
                  .ok());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_TRUE(writer.Append(objects[i], static_cast<int>(i % 3)).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

// Bit-exact element-wise comparison of two views.
void ExpectViewsBitIdentical(const MomentView& a, const MomentView& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dims(), b.dims());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(a.mean(i).data(), b.mean(i).data(),
                             a.dims() * sizeof(double)))
        << "mean row " << i;
    ASSERT_EQ(0, std::memcmp(a.second_moment(i).data(),
                             b.second_moment(i).data(),
                             a.dims() * sizeof(double)))
        << "mu2 row " << i;
    ASSERT_EQ(0, std::memcmp(a.variance(i).data(), b.variance(i).data(),
                             a.dims() * sizeof(double)))
        << "var row " << i;
    ASSERT_EQ(a.total_variance(i), b.total_variance(i)) << "total var " << i;
  }
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
}

// Opens a forced-backend store over `path`.
MomentStorePtr OpenStore(const std::string& path,
                         io::MomentBackendChoice choice,
                         const engine::Engine& eng = engine::Engine::Serial(),
                         std::size_t chunk_rows = 0,
                         const std::string& sidecar = "",
                         bool reuse = true) {
  io::MomentStoreOptions options;
  options.backend = choice;
  options.chunk_rows = chunk_rows;
  options.sidecar_path = sidecar;
  options.reuse_sidecar = reuse;
  auto store = io::StreamMomentStoreFromFile(path, eng, options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).ValueOrDie();
}

TEST(MomentStoreTest, ChunkBoundarySweepIsBitIdentical) {
  // n deliberately not divisible by any chunk size; sweep chunk shapes from
  // "more chunks than the per-thread window LRU holds" (chunk_rows=1 ->
  // 97 chunks > kMomentWindowSlots, forcing eviction + refault) to "one
  // chunk covering everything".
  const auto objects = MakeTestObjects(97, 3, /*seed=*/7);
  const std::string path = WriteTestFile("chunksweep.ubin", objects);
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);

  for (const std::size_t chunk_rows :
       {std::size_t{1}, std::size_t{8}, std::size_t{32}, std::size_t{128}}) {
    const std::string sidecar =
        TempPath("chunksweep" + std::to_string(chunk_rows) + ".umom");
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), chunk_rows, sidecar);
    ASSERT_EQ(MomentBackend::kMapped, store->backend());
    EXPECT_TRUE(store->view().chunked());
    EXPECT_EQ(chunk_rows, store->view().chunk_rows());
    ExpectViewsBitIdentical(reference.view(), store->view());
    // Sequential second pass: re-faulting evicted chunks must reproduce the
    // same bytes.
    ExpectViewsBitIdentical(reference.view(), store->view());
    std::remove(sidecar.c_str());
  }
  std::remove(path.c_str());
}

TEST(MomentStoreTest, FastAlgorithmsBitIdenticalAcrossBackendsAndThreads) {
  const auto objects = MakeTestObjects(150, 4, /*seed=*/13);
  const std::string path = WriteTestFile("fastgroup.ubin", objects);
  const std::string sidecar = TempPath("fastgroup.umom");
  constexpr int kClusters = 5;
  constexpr uint64_t kSeed = 99;

  // The engine contract is bit-identity at FIXED block_size for any thread
  // count, so the whole sweep pins block_size and varies only num_threads.
  engine::EngineConfig one;
  one.num_threads = 1;
  one.block_size = 16;
  engine::EngineConfig two = one;
  two.num_threads = 2;
  engine::EngineConfig eight = one;
  eight.num_threads = 8;
  const engine::Engine engines[] = {engine::Engine(one), engine::Engine(two),
                                    engine::Engine(eight)};

  // Reference run: resident backend, single thread.
  const MomentStorePtr resident =
      OpenStore(path, io::MomentBackendChoice::kResident);
  ASSERT_EQ(MomentBackend::kResident, resident->backend());
  const auto ref_ukm = clustering::Ukmeans::RunOnMoments(
      resident->view(), kClusters, kSeed, clustering::Ukmeans::Params(),
      engines[0]);
  const auto ref_mmv = clustering::Mmvar::RunOnMoments(
      resident->view(), kClusters, kSeed, clustering::Mmvar::Params(),
      engines[0]);
  const auto ref_ucpc = clustering::Ucpc::RunOnMoments(
      resident->view(), kClusters, kSeed, clustering::Ucpc::Params(),
      engines[0]);

  // Small chunks so every run crosses many chunk boundaries.
  const MomentStorePtr mapped =
      OpenStore(path, io::MomentBackendChoice::kMapped,
                engine::Engine::Serial(), /*chunk_rows=*/16, sidecar);
  ASSERT_EQ(MomentBackend::kMapped, mapped->backend());

  for (const engine::Engine& eng : engines) {
    for (const auto* store : {&resident, &mapped}) {
      const MomentView view = (*store)->view();
      const auto ukm = clustering::Ukmeans::RunOnMoments(
          view, kClusters, kSeed, clustering::Ukmeans::Params(), eng);
      EXPECT_EQ(ref_ukm.labels, ukm.labels);
      EXPECT_EQ(ref_ukm.objective, ukm.objective);
      EXPECT_EQ(ref_ukm.iterations, ukm.iterations);
      const auto mmv = clustering::Mmvar::RunOnMoments(
          view, kClusters, kSeed, clustering::Mmvar::Params(), eng);
      EXPECT_EQ(ref_mmv.labels, mmv.labels);
      EXPECT_EQ(ref_mmv.objective, mmv.objective);
      const auto ucpc = clustering::Ucpc::RunOnMoments(
          view, kClusters, kSeed, clustering::Ucpc::Params(), eng);
      EXPECT_EQ(ref_ucpc.labels, ucpc.labels);
      EXPECT_EQ(ref_ucpc.objective, ucpc.objective);
    }
  }
  EXPECT_GT(mapped->moment_bytes_resident(), 0u);
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(MomentStoreTest, SpillModeMatchesResidentBuilderForAnyBatchPartition) {
  const auto objects = MakeTestObjects(53, 3, /*seed=*/31);
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);

  engine::EngineConfig threaded;
  threaded.num_threads = 3;
  threaded.block_size = 4;
  const engine::Engine engines[] = {engine::Engine::Serial(),
                                    engine::Engine(threaded)};
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{5}, std::size_t{53}, std::size_t{60}}) {
    for (const engine::Engine& eng : engines) {
      const std::string sidecar = TempPath("spill.umom");
      io::MomentFileWriter writer;
      ASSERT_TRUE(writer.Open(sidecar, 3, /*chunk_rows=*/8).ok());
      DatasetBuilder builder(eng, &writer);
      for (std::size_t start = 0; start < objects.size(); start += batch) {
        const std::size_t count = std::min(batch, objects.size() - start);
        builder.AddBatch({objects.data() + start, count});
      }
      ASSERT_TRUE(builder.status().ok());
      ASSERT_EQ(objects.size(), builder.size());
      ASSERT_TRUE(writer.Finish().ok());

      auto store = io::MappedMomentStore::Open(sidecar);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ExpectViewsBitIdentical(reference.view(),
                              store.ValueOrDie()->view());
      // Where this build supports mmap, the windows must actually have come
      // from mmap — a silent 100% heap-read fallback would invalidate the
      // out-of-core design while passing every value check.
      EXPECT_EQ(io::MmapSupported(), store.ValueOrDie()->used_mmap());
      std::remove(sidecar.c_str());
    }
  }
}

TEST(MomentStoreTest, WriteMomentFileRoundTripsAnyView) {
  const auto objects = MakeTestObjects(41, 2, /*seed=*/3);
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);
  const std::string sidecar = TempPath("roundtrip.umom");
  ASSERT_TRUE(
      io::WriteMomentFile(reference.view(), sidecar, /*chunk_rows=*/4).ok());
  auto store = io::MappedMomentStore::Open(sidecar);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectViewsBitIdentical(reference.view(), store.ValueOrDie()->view());

  // A chunked view is a valid source too (mapped -> file -> mapped).
  const std::string copy = TempPath("roundtrip2.umom");
  ASSERT_TRUE(io::WriteMomentFile(store.ValueOrDie()->view(), copy,
                                  /*chunk_rows=*/16)
                  .ok());
  auto store2 = io::MappedMomentStore::Open(copy);
  ASSERT_TRUE(store2.ok()) << store2.status().ToString();
  ExpectViewsBitIdentical(reference.view(), store2.ValueOrDie()->view());
  std::remove(copy.c_str());
  std::remove(sidecar.c_str());
}

TEST(MomentStoreTest, AutoBackendSelectionFollowsBudget) {
  const auto objects = MakeTestObjects(60, 3, /*seed=*/17);
  const std::string path = WriteTestFile("budget.ubin", objects);
  const std::size_t resident_bytes = (3 * 60 * 3 + 60) * sizeof(double);

  struct Case {
    std::size_t budget;
    MomentBackend expected;
  };
  const Case cases[] = {
      {0, MomentBackend::kResident},  // unlimited
      {resident_bytes, MomentBackend::kResident},
      {resident_bytes - 1, MomentBackend::kMapped},
      {1, MomentBackend::kMapped},
  };
  for (const Case& c : cases) {
    engine::EngineConfig config;
    config.memory_budget_bytes = c.budget;
    const engine::Engine eng(config);
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kAuto, eng, 0,
                  TempPath("budget.umom"));
    EXPECT_EQ(c.expected, store->backend()) << "budget " << c.budget;
    if (c.expected == MomentBackend::kMapped) {
      // With no explicit chunk hint, auto-sizing bounds the per-thread
      // window cache by the budget (floored to the 64-row minimum here).
      EXPECT_EQ(64u, store->view().chunk_rows()) << "budget " << c.budget;
    }
  }
  std::remove(TempPath("budget.umom").c_str());
  std::remove(path.c_str());
}

TEST(MomentStoreTest, SidecarReuseHonorsStalenessGuard) {
  const auto objects = MakeTestObjects(30, 2, /*seed=*/23);
  const std::string path = WriteTestFile("reuse.ubin", objects);
  const std::string sidecar = TempPath("reuse.umom");
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);

  // First open builds the sidecar.
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar);
    ExpectViewsBitIdentical(reference.view(), store->view());
  }

  // Poison one payload double in place (same size, header untouched). A
  // reusing open must serve the poisoned byte — proof it did NOT rebuild.
  std::vector<char> bytes = ReadFileBytes(sidecar);
  const double poison = 1234.5;
  std::memcpy(bytes.data() + io::kMomentHeaderBytes, &poison, sizeof(poison));
  WriteFileBytes(sidecar, bytes);
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar, /*reuse=*/true);
    EXPECT_EQ(poison, store->view().mean(0)[0]);
  }

  // reuse=false must rebuild and restore the true value.
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar, /*reuse=*/false);
    ExpectViewsBitIdentical(reference.view(), store->view());
  }

  // A sidecar whose stored source size mismatches the dataset is stale:
  // rewrite the guard field and expect a silent rebuild even with reuse on.
  bytes = ReadFileBytes(sidecar);
  const uint64_t wrong_source = 1;
  std::memcpy(bytes.data() + 40, &wrong_source, sizeof(wrong_source));
  WriteFileBytes(sidecar, bytes);
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar, /*reuse=*/true);
    ExpectViewsBitIdentical(reference.view(), store->view());
  }
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(MomentStoreTest, SidecarReuseRespectsChunkRequirement) {
  const auto objects = MakeTestObjects(40, 2, /*seed=*/61);
  const std::string path = WriteTestFile("chunkreq.ubin", objects);
  const std::string sidecar = TempPath("chunkreq.umom");

  // Build with 8-row chunks.
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), /*chunk_rows=*/8, sidecar);
    EXPECT_EQ(8u, store->view().chunk_rows());
  }
  // A larger requirement reuses the smaller-chunk sidecar (window memory
  // only shrinks).
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), /*chunk_rows=*/32, sidecar);
    EXPECT_EQ(8u, store->view().chunk_rows());
  }
  // A smaller requirement must rebuild: serving 8-row chunks when the
  // caller sized windows for 4 would exceed the memory bound.
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), /*chunk_rows=*/4, sidecar);
    EXPECT_EQ(4u, store->view().chunk_rows());
    ExpectViewsBitIdentical(MomentMatrix::FromObjects(objects).view(),
                            store->view());
  }
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(MomentStoreTest, SidecarRebuiltWhenDatasetRegeneratedInPlace) {
  // Regenerating a dataset in place with fixed-size records reproduces the
  // exact byte count, and on coarse filesystems the rewrite can land in the
  // same mtime tick (this test deliberately does NOT touch timestamps) —
  // the content-probe part of the guard must catch it and force a rebuild.
  const auto objects_v1 = MakeTestObjects(24, 2, /*seed=*/51);
  const std::string path = WriteTestFile("regen.ubin", objects_v1);
  const std::size_t v1_bytes = ReadFileBytes(path).size();
  const std::string sidecar = TempPath("regen.umom");
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar);
    ExpectViewsBitIdentical(MomentMatrix::FromObjects(objects_v1).view(),
                            store->view());
  }

  // Same n/m/pdf-family cycle, different seed: identical byte size, so the
  // size guard alone would wrongly reuse the v1 sidecar.
  const auto objects_v2 = MakeTestObjects(24, 2, /*seed=*/52);
  const std::string path2 = WriteTestFile("regen.ubin", objects_v2);
  ASSERT_EQ(path, path2);
  ASSERT_EQ(v1_bytes, ReadFileBytes(path).size());

  const MomentStorePtr store =
      OpenStore(path, io::MomentBackendChoice::kMapped,
                engine::Engine::Serial(), 8, sidecar, /*reuse=*/true);
  ExpectViewsBitIdentical(MomentMatrix::FromObjects(objects_v2).view(),
                          store->view());
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(MomentStoreTest, FailedRebuildPreservesExistingSidecar) {
  const auto objects = MakeTestObjects(25, 2, /*seed=*/71);
  const std::string path = WriteTestFile("failsafe.ubin", objects);
  const std::string sidecar = TempPath("failsafe.umom");
  const MomentMatrix reference = MomentMatrix::FromObjects(objects);
  {
    const MomentStorePtr store =
        OpenStore(path, io::MomentBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar);
    ExpectViewsBitIdentical(reference.view(), store->view());
  }

  // Corrupt the dataset so (a) the staleness probe forces a rebuild and
  // (b) that rebuild fails mid-ingestion: the first object's length prefix
  // (at header 64 + name "moment-store-test" 17) claims more bytes than
  // the file holds. The header itself stays valid, so the failure happens
  // after the temp writer opened — exactly the dangerous window.
  std::vector<char> bytes = ReadFileBytes(path);
  const uint32_t huge_payload = 0xffffffffu;
  std::memcpy(bytes.data() + 64 + 17, &huge_payload, sizeof(huge_payload));
  WriteFileBytes(path, bytes);

  io::MomentStoreOptions options;
  options.backend = io::MomentBackendChoice::kMapped;
  options.sidecar_path = sidecar;
  const auto failed = io::StreamMomentStoreFromFile(path, engine::Engine::Serial(),
                                                    options);
  EXPECT_FALSE(failed.ok());

  // The previously built sidecar must have survived the failed rebuild
  // intact (the rebuild goes through a temp sibling + rename).
  auto survived = io::MappedMomentStore::Open(sidecar);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  ExpectViewsBitIdentical(reference.view(), survived.ValueOrDie()->view());
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(MomentFormatTest, RejectsForeignEndianSidecars) {
  const auto objects = MakeTestObjects(10, 2, /*seed=*/5);
  const MomentMatrix mm = MomentMatrix::FromObjects(objects);
  const std::string sidecar = TempPath("endian.umom");
  ASSERT_TRUE(io::WriteMomentFile(mm.view(), sidecar).ok());
  std::vector<char> bytes = ReadFileBytes(sidecar);
  const uint32_t swapped = io::kEndianTagSwapped;
  std::memcpy(bytes.data() + 8, &swapped, sizeof(swapped));
  WriteFileBytes(sidecar, bytes);

  const auto result = io::MappedMomentStore::Open(sidecar);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string::npos, result.status().message().find("endian"))
      << result.status().ToString();
  std::remove(sidecar.c_str());
}

TEST(MomentFormatTest, RejectsNewerVersionsAndBadMagic) {
  const auto objects = MakeTestObjects(10, 2, /*seed=*/5);
  const MomentMatrix mm = MomentMatrix::FromObjects(objects);
  const std::string sidecar = TempPath("version.umom");
  ASSERT_TRUE(io::WriteMomentFile(mm.view(), sidecar).ok());
  std::vector<char> bytes = ReadFileBytes(sidecar);

  std::vector<char> future = bytes;
  const uint32_t version = io::kMomentFormatVersion + 7;
  std::memcpy(future.data() + 12, &version, sizeof(version));
  WriteFileBytes(sidecar, future);
  EXPECT_FALSE(io::MappedMomentStore::Open(sidecar).ok());

  std::vector<char> magic = bytes;
  magic[0] = 'x';
  WriteFileBytes(sidecar, magic);
  EXPECT_FALSE(io::MappedMomentStore::Open(sidecar).ok());

  WriteFileBytes(sidecar, std::vector<char>(10, 'x'));  // shorter than header
  EXPECT_FALSE(io::MappedMomentStore::Open(sidecar).ok());
  std::remove(sidecar.c_str());
}

TEST(MomentFormatTest, RejectsTruncatedAndPaddedSidecars) {
  const auto objects = MakeTestObjects(20, 3, /*seed=*/9);
  const MomentMatrix mm = MomentMatrix::FromObjects(objects);
  const std::string sidecar = TempPath("size.umom");
  ASSERT_TRUE(io::WriteMomentFile(mm.view(), sidecar).ok());
  const std::vector<char> bytes = ReadFileBytes(sidecar);

  std::vector<char> truncated = bytes;
  truncated.resize(bytes.size() - 8);
  WriteFileBytes(sidecar, truncated);
  EXPECT_FALSE(io::MappedMomentStore::Open(sidecar).ok());

  std::vector<char> padded = bytes;
  padded.push_back('x');
  WriteFileBytes(sidecar, padded);
  EXPECT_FALSE(io::MappedMomentStore::Open(sidecar).ok());
  std::remove(sidecar.c_str());
}

TEST(MomentFormatTest, RejectsNonPowerOfTwoChunkRows) {
  const auto objects = MakeTestObjects(10, 2, /*seed=*/5);
  const MomentMatrix mm = MomentMatrix::FromObjects(objects);
  const std::string sidecar = TempPath("chunkpow.umom");
  ASSERT_TRUE(io::WriteMomentFile(mm.view(), sidecar).ok());
  std::vector<char> bytes = ReadFileBytes(sidecar);
  const uint64_t odd_rows = 3;
  std::memcpy(bytes.data() + 32, &odd_rows, sizeof(odd_rows));
  WriteFileBytes(sidecar, bytes);
  const auto result = io::MappedMomentStore::Open(sidecar);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string::npos,
            result.status().message().find("power of two"))
      << result.status().ToString();
  std::remove(sidecar.c_str());
}

TEST(MomentFormatTest, NormalizeChunkRowsRoundsUpToPowersOfTwo) {
  EXPECT_EQ(io::kDefaultMomentChunkRows, io::NormalizeMomentChunkRows(0));
  EXPECT_EQ(1u, io::NormalizeMomentChunkRows(1));
  EXPECT_EQ(8u, io::NormalizeMomentChunkRows(5));
  EXPECT_EQ(4096u, io::NormalizeMomentChunkRows(4096));
  EXPECT_EQ(std::size_t{1} << 20,
            io::NormalizeMomentChunkRows((std::size_t{1} << 20) + 1));
}

}  // namespace
}  // namespace uclust
