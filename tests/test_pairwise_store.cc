// PairwiseStore backend contract: Dense, Tiled, and OnTheFly must serve
// bit-identical ED^ values, every pairwise consumer must produce identical
// clusterings under any memory budget, the Tiled LRU must actually evict
// (and recompute) under a tiny budget, and peak table memory must respect
// the configured budget.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "clustering/foptics.h"
#include "clustering/fdbscan.h"
#include "clustering/pairwise_store.h"
#include "clustering/uahc.h"
#include "clustering/ukmedoids.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset TestDataset(std::size_t n, std::size_t m, int classes,
                                   uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = m;
  params.classes = classes;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(params, seed, "pairwise");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

PairwiseStoreOptions Explicit(PairwiseBackend backend, std::size_t tile_rows,
                              std::size_t max_tiles) {
  PairwiseStoreOptions o;
  o.backend = backend;
  o.tile_rows = tile_rows;
  o.max_cached_tiles = max_tiles;
  return o;
}

TEST(PairwiseStore, BackendsServeBitIdenticalValues) {
  const auto ds = TestDataset(61, 3, 3, 11);
  const std::size_t n = ds.size();
  const engine::Engine eng;
  const uncertain::ResidentSampleStore store(ds.objects(), 12, 0x5eed, eng);
  const uncertain::SampleView cache = store.view();
  const kernels::PairwiseKernel kernels_under_test[] = {
      kernels::PairwiseKernel::ClosedFormED2(ds.objects()),
      kernels::PairwiseKernel::SampleED2(cache),
      kernels::PairwiseKernel::SampleED(cache),
      kernels::PairwiseKernel::DistanceProbability(cache, 0.3),
  };
  for (const auto& kernel : kernels_under_test) {
    PairwiseStore dense(eng, kernel,
                        Explicit(PairwiseBackend::kDense, 0, 0));
    PairwiseStore tiled(eng, kernel,
                        Explicit(PairwiseBackend::kTiled, 7, 2));
    PairwiseStore fly(eng, kernel,
                      Explicit(PairwiseBackend::kOnTheFly, 0, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double want = i == j ? 0.0 : kernel.Eval(i, j);
        ASSERT_EQ(dense.Value(i, j), want) << i << "," << j;
        ASSERT_EQ(tiled.Value(i, j), want) << i << "," << j;
        ASSERT_EQ(fly.Value(i, j), want) << i << "," << j;
      }
    }
  }
}

TEST(PairwiseStore, SweepsMatchRandomAccess) {
  const auto ds = TestDataset(40, 2, 2, 13);
  const std::size_t n = ds.size();
  const engine::Engine eng;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(ds.objects());
  PairwiseStore reference(eng, kernel,
                          Explicit(PairwiseBackend::kDense, 0, 0));
  for (PairwiseBackend backend :
       {PairwiseBackend::kDense, PairwiseBackend::kTiled,
        PairwiseBackend::kOnTheFly}) {
    PairwiseStore store(eng, kernel, Explicit(backend, 5, 2));
    std::vector<double> from_rows(n * n, -1.0);
    store.VisitAllRows([&](std::size_t i, std::span<const double> row) {
      for (std::size_t j = 0; j < n; ++j) from_rows[i * n + j] = row[j];
    });
    std::vector<double> from_upper(n * n, 0.0);
    store.VisitUpperTriangle([&](std::size_t i,
                                 std::span<const double> tail) {
      for (std::size_t t = 0; t < tail.size(); ++t) {
        from_upper[i * n + i + 1 + t] = tail[t];
        from_upper[(i + 1 + t) * n + i] = tail[t];
      }
    });
    std::vector<std::size_t> some_rows = {0, n / 2, n - 1, 3};
    std::vector<double> gathered;
    store.GatherRows(some_rows, &gathered);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(from_rows[i * n + j], reference.Value(i, j))
            << PairwiseBackendName(backend) << " " << i << "," << j;
        ASSERT_EQ(from_upper[i * n + j], reference.Value(i, j))
            << PairwiseBackendName(backend) << " " << i << "," << j;
      }
    }
    for (std::size_t r = 0; r < some_rows.size(); ++r) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(gathered[r * n + j], reference.Value(some_rows[r], j));
      }
    }
  }
}

TEST(PairwiseStore, LruEvictsAndRecomputesUnderTinyCapacity) {
  const auto ds = TestDataset(32, 2, 2, 17);
  const std::size_t n = ds.size();
  const engine::Engine eng;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(ds.objects());
  // 4 tiles of 8 rows; only 2 may stay resident.
  PairwiseStore store(eng, kernel, Explicit(PairwiseBackend::kTiled, 8, 2));
  const std::size_t tile_bytes = 8 * n * sizeof(double);

  const double v0 = store.Value(0, 5);
  const int64_t evals_tile0 = store.evaluations();
  EXPECT_EQ(evals_tile0, 8 * static_cast<int64_t>(n - 1));
  store.Value(0, 6);  // tile 0 resident: no recompute
  EXPECT_EQ(store.evaluations(), evals_tile0);

  store.Value(8, 0);   // tile 1 faults in
  store.Value(16, 0);  // tile 2 faults in, evicting tile 0 (LRU)
  const int64_t evals_three_tiles = store.evaluations();
  EXPECT_EQ(evals_three_tiles, 3 * evals_tile0);

  // Tile 0 was evicted: touching it again must recompute the same value.
  EXPECT_EQ(store.Value(0, 5), v0);
  EXPECT_EQ(store.evaluations(), 4 * evals_tile0);

  // Tile 2 stayed resident through the re-fault of tile 0 (it was the MRU
  // survivor), so touching it is free.
  store.Value(16, 3);
  EXPECT_EQ(store.evaluations(), 4 * evals_tile0);

  // Never more than two resident tiles' worth of bytes.
  EXPECT_LE(store.table_bytes_peak(), 2 * tile_bytes);
  EXPECT_GE(store.table_bytes_peak(), tile_bytes);
}

TEST(PairwiseStore, BudgetSelectsBackendAndBoundsPeak) {
  const std::size_t n = 128;
  const std::size_t row_bytes = n * sizeof(double);
  EXPECT_EQ(PairwiseStoreOptions::FromBudget(0, n).backend,
            PairwiseBackend::kDense);
  EXPECT_EQ(PairwiseStoreOptions::FromBudget(n * n * sizeof(double), n)
                .backend,
            PairwiseBackend::kDense);
  const PairwiseStoreOptions tiled =
      PairwiseStoreOptions::FromBudget(16 * row_bytes, n);
  EXPECT_EQ(tiled.backend, PairwiseBackend::kTiled);
  EXPECT_LE(tiled.max_cached_tiles * tiled.tile_rows * row_bytes,
            16 * row_bytes);
  EXPECT_EQ(PairwiseStoreOptions::FromBudget(1, n).backend,
            PairwiseBackend::kOnTheFly);

  // A tiled store driven hard stays under its budget.
  const auto ds = TestDataset(n, 2, 2, 19);
  const engine::Engine eng;
  PairwiseStore store(eng, kernels::PairwiseKernel::ClosedFormED2(
                               ds.objects()),
                      PairwiseStoreOptions::FromBudget(16 * row_bytes, n));
  for (std::size_t i = 0; i < n; i += 3) store.Row(i);
  store.VisitAllRows([](std::size_t, std::span<const double>) {});
  EXPECT_LE(store.table_bytes_peak(), 16 * row_bytes);
}

// Identical clusterings across backends, selected through the engine's
// memory_budget_bytes knob exactly as production call sites do. Budgets:
// 0 = unlimited (dense), a few rows (tiled), 1 byte (on-the-fly).
TEST(PairwiseStore, ConsumersProduceIdenticalClusteringsAcrossBackends) {
  const auto ds = TestDataset(120, 3, 3, 23);
  const std::size_t row_bytes = ds.size() * sizeof(double);
  const std::size_t budgets[] = {0, 12 * row_bytes, 1};
  const char* expected_backend[] = {"dense", "tiled", "onthefly"};

  const auto run = [&](Clusterer* algo, std::size_t budget) {
    engine::EngineConfig config;
    config.num_threads = 1;
    config.block_size = 32;
    config.memory_budget_bytes = budget;
    algo->set_engine(engine::Engine(config));
    return algo->Cluster(ds, 3, 7);
  };

  UkMedoids::Params mp;
  mp.use_closed_form = true;
  UkMedoids medoids_closed(mp);
  UkMedoids medoids_sampled;
  Uahc uahc;
  Foptics foptics;
  Fdbscan fdbscan;
  Clusterer* algos[] = {&medoids_closed, &medoids_sampled, &uahc, &foptics,
                        &fdbscan};
  for (Clusterer* algo : algos) {
    const ClusteringResult baseline = run(algo, budgets[0]);
    EXPECT_EQ(baseline.pairwise_backend, expected_backend[0]) << algo->name();
    for (int b = 1; b < 3; ++b) {
      const ClusteringResult out = run(algo, budgets[b]);
      EXPECT_EQ(out.pairwise_backend, expected_backend[b]) << algo->name();
      EXPECT_EQ(out.labels, baseline.labels)
          << algo->name() << " budget=" << budgets[b];
      EXPECT_EQ(out.iterations, baseline.iterations) << algo->name();
      EXPECT_EQ(out.clusters_found, baseline.clusters_found) << algo->name();
      if (!std::isnan(baseline.objective)) {
        EXPECT_EQ(out.objective, baseline.objective) << algo->name();
      }
      if (budgets[b] > 1) {
        EXPECT_LE(out.table_bytes_peak, budgets[b])
            << algo->name() << " exceeded its memory budget";
      }
    }
    // Dense materializes the full O(n^2) table — except FDBSCAN, whose
    // upper-triangle sweep streams bounded scratch on every backend. On top
    // of the table, sweep scratch (e.g. the UK-medoids gather-sweep block
    // stripes) may add at most the ~1 MiB streaming bound.
    const std::size_t table_bytes = ds.size() * ds.size() * sizeof(double);
    const std::size_t scratch_bound = std::size_t{1} << 20;
    if (algo->name() != "FDBSCAN") {
      EXPECT_GE(baseline.table_bytes_peak, table_bytes) << algo->name();
      EXPECT_LE(baseline.table_bytes_peak, table_bytes + scratch_bound)
          << algo->name();
    } else {
      // Bounded streaming scratch (covers the whole table only when n is
      // small enough that it fits in one ~1 MiB chunk, as here).
      EXPECT_LE(baseline.table_bytes_peak, table_bytes) << algo->name();
    }
  }
}

}  // namespace
}  // namespace uclust::clustering
