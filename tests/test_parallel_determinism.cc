// Cross-thread-count determinism of the clustering stack: for a fixed seed
// and block size, labels, objectives, diagnostics, and cached samples must
// be bit-identical for num_threads in {1, 2, 8}. This is the library-wide
// engine contract (fixed block partition + ordered reductions + per-object
// rng sub-streams) that lets production deployments change parallelism
// without changing results.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "clustering/basic_ukmeans.h"
#include "clustering/ckmeans.h"
#include "clustering/fdbscan.h"
#include "clustering/foptics.h"
#include "clustering/mmvar.h"
#include "clustering/registry.h"
#include "clustering/simd/simd.h"
#include "clustering/ucpc.h"
#include "clustering/ukmeans.h"
#include "clustering/ukmedoids.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "io/sample_file.h"
#include "uncertain/sample_store.h"

namespace uclust::clustering {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

data::UncertainDataset TestDataset(std::size_t n, std::size_t m, int classes,
                                   uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = m;
  params.classes = classes;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(params, seed, "determinism");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

engine::Engine EngineWith(int threads) {
  engine::EngineConfig config;
  config.num_threads = threads;
  config.block_size = 128;  // several blocks even on the small test sets
  return engine::Engine(config);
}

TEST(ParallelDeterminism, UkmeansBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(700, 4, 5, 31);
  const auto baseline = Ukmeans::RunOnMoments(ds.moments(), 5, 7,
                                              Ukmeans::Params(),
                                              EngineWith(1));
  for (int threads : kThreadCounts) {
    const auto out = Ukmeans::RunOnMoments(ds.moments(), 5, 7,
                                           Ukmeans::Params(),
                                           EngineWith(threads));
    EXPECT_EQ(out.labels, baseline.labels) << "threads=" << threads;
    EXPECT_EQ(out.objective, baseline.objective) << "threads=" << threads;
    EXPECT_EQ(out.iterations, baseline.iterations) << "threads=" << threads;
  }
}

// CK-means knob sweep: every (reduction, bound_pruning) combination must
// reproduce the direct UK-means sweeps bit-for-bit at any thread count.
// The evaluation/skip counters are a pure function of the (deterministic)
// pruning decisions, so they too must be thread-count independent — they
// legitimately differ ACROSS knob combinations, never across threads.
TEST(ParallelDeterminism, CkmeansKnobSweepBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(700, 4, 5, 31);
  const auto direct = Ukmeans::RunOnMoments(ds.moments(), 5, 7,
                                            Ukmeans::Params(), EngineWith(1));
  for (const bool reduction : {false, true}) {
    for (const bool bounds : {false, true}) {
      CkMeans::Params p;
      p.reduction = reduction;
      p.bound_pruning = bounds;
      CkMeans::Outcome serial;
      for (int threads : kThreadCounts) {
        const auto out =
            CkMeans::RunOnMoments(ds.moments(), 5, 7, p, EngineWith(threads));
        EXPECT_EQ(out.labels, direct.labels)
            << "reduction=" << reduction << " bounds=" << bounds
            << " threads=" << threads;
        EXPECT_EQ(out.objective, direct.objective)
            << "reduction=" << reduction << " bounds=" << bounds
            << " threads=" << threads;
        EXPECT_EQ(out.iterations, direct.iterations)
            << "reduction=" << reduction << " bounds=" << bounds
            << " threads=" << threads;
        if (threads == 1) {
          serial = out;
        } else {
          EXPECT_EQ(out.center_distance_evals, serial.center_distance_evals)
              << "reduction=" << reduction << " bounds=" << bounds
              << " threads=" << threads;
          EXPECT_EQ(out.bounds_skipped, serial.bounds_skipped)
              << "reduction=" << reduction << " bounds=" << bounds
              << " threads=" << threads;
        }
      }
    }
  }
}

// The SIMD dispatch path is a second "parallelism" axis with the same
// contract as the thread count: every compiled-and-supported simd_isa,
// at every thread count, must reproduce the serial forced-scalar
// clustering bit-for-bit — labels, objective, iterations, and the
// pruning counters (which are a pure function of the identical
// distances). This is the lane-blocked accumulation guarantee of
// src/clustering/simd surfacing at the EngineConfig level.
TEST(ParallelDeterminism, SimdIsaSweepBitIdenticalAcrossThreadCounts) {
  namespace simd = clustering::simd;
  std::vector<std::string> isas;
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::TableFor(isa) != nullptr) isas.push_back(simd::IsaName(isa));
  }
  const auto ds = TestDataset(700, 4, 5, 31);
  const auto with = [&](const std::string& isa, int threads) {
    engine::EngineConfig config;
    config.num_threads = threads;
    config.block_size = 128;
    config.simd_isa = isa;
    return engine::Engine(config);
  };
  CkMeans::Params p;
  p.reduction = true;
  p.bound_pruning = true;
  const auto baseline =
      CkMeans::RunOnMoments(ds.moments(), 5, 7, p, with("scalar", 1));
  for (const std::string& isa : isas) {
    for (int threads : kThreadCounts) {
      const auto out =
          CkMeans::RunOnMoments(ds.moments(), 5, 7, p, with(isa, threads));
      EXPECT_EQ(out.labels, baseline.labels)
          << "isa=" << isa << " threads=" << threads;
      EXPECT_EQ(out.objective, baseline.objective)
          << "isa=" << isa << " threads=" << threads;
      EXPECT_EQ(out.iterations, baseline.iterations)
          << "isa=" << isa << " threads=" << threads;
      EXPECT_EQ(out.center_distance_evals, baseline.center_distance_evals)
          << "isa=" << isa << " threads=" << threads;
      EXPECT_EQ(out.bounds_skipped, baseline.bounds_skipped)
          << "isa=" << isa << " threads=" << threads;
    }
  }
  simd::ForceIsa(simd::Isa::kAuto);  // leave the process on auto dispatch
}

TEST(ParallelDeterminism, UcpcBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(600, 3, 4, 33);
  const auto baseline =
      Ucpc::RunOnMoments(ds.moments(), 4, 9, Ucpc::Params(), EngineWith(1));
  for (int threads : kThreadCounts) {
    const auto out =
        Ucpc::RunOnMoments(ds.moments(), 4, 9, Ucpc::Params(),
                           EngineWith(threads));
    EXPECT_EQ(out.labels, baseline.labels) << "threads=" << threads;
    EXPECT_EQ(out.objective, baseline.objective) << "threads=" << threads;
    EXPECT_EQ(out.passes, baseline.passes) << "threads=" << threads;
    EXPECT_EQ(out.moves, baseline.moves) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, MmvarBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(600, 3, 4, 35);
  const auto baseline =
      Mmvar::RunOnMoments(ds.moments(), 4, 11, Mmvar::Params(), EngineWith(1));
  for (int threads : kThreadCounts) {
    const auto out = Mmvar::RunOnMoments(ds.moments(), 4, 11, Mmvar::Params(),
                                         EngineWith(threads));
    EXPECT_EQ(out.labels, baseline.labels) << "threads=" << threads;
    EXPECT_EQ(out.objective, baseline.objective) << "threads=" << threads;
    EXPECT_EQ(out.passes, baseline.passes) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, ResidentSampleContentsBitIdentical) {
  const auto ds = TestDataset(300, 3, 3, 37);
  const uncertain::ResidentSampleStore serial(ds.objects(), 16, 0x5eed,
                                              EngineWith(1));
  const uncertain::SampleView sv = serial.view();
  for (int threads : kThreadCounts) {
    const uncertain::ResidentSampleStore parallel(ds.objects(), 16, 0x5eed,
                                                  EngineWith(threads));
    const uncertain::SampleView pv = parallel.view();
    ASSERT_EQ(pv.size(), sv.size());
    for (std::size_t i = 0; i < sv.size(); ++i) {
      for (int s = 0; s < sv.samples_per_object(); ++s) {
        const auto a = sv.SampleOf(i, s);
        const auto b = pv.SampleOf(i, s);
        ASSERT_EQ(std::vector<double>(a.begin(), a.end()),
                  std::vector<double>(b.begin(), b.end()))
            << "object " << i << " sample " << s << " threads=" << threads;
      }
    }
  }
}

// Regression for the latent draw-order bug class: object i's sample bytes
// must be a pure function of (pdf, seed, i, S) — never of which objects were
// materialized first or in what order. A visitation-order-dependent rng
// (e.g. one shared stream advanced per draw) would pass the thread-count
// test at num_threads=1 yet change bytes whenever the fill order changes;
// this pins the bytes against per-object draws issued in REVERSE order and
// one-object-at-a-time.
TEST(ParallelDeterminism, SampleBytesIndependentOfMaterializationOrder) {
  const auto ds = TestDataset(120, 3, 3, 47);
  const int s_per = 8;
  const uint64_t seed = 0x5eed;
  const uncertain::ResidentSampleStore store(ds.objects(), s_per, seed,
                                             EngineWith(8));
  const uncertain::SampleView view = store.view();
  const std::size_t row = static_cast<std::size_t>(s_per) * ds.dims();
  std::vector<double> out(row);
  for (std::size_t rev = ds.size(); rev-- > 0;) {
    uncertain::DrawObjectSamples(ds.object(rev), seed, rev, s_per, out);
    const auto got = view.ObjectSamples(rev);
    ASSERT_EQ(std::vector<double>(got.begin(), got.end()), out)
        << "object " << rev << " depends on materialization order";
  }
}

// Same guarantee on the mapped backend, against its chunk-fault order: a
// chunked view must serve identical bytes whether chunks are faulted
// front-to-back or back-to-front (and regardless of the window LRU state in
// between).
TEST(ParallelDeterminism, MappedSampleBytesIndependentOfFaultOrder) {
  const auto ds = TestDataset(120, 3, 3, 49);
  const uncertain::ResidentSampleStore resident(ds.objects(), 8, 0x5eed,
                                                EngineWith(1));
  const std::string sidecar =
      ::testing::TempDir() + "determinism_fault_order.usmp";
  ASSERT_TRUE(io::WriteSampleFile(resident.view(), sidecar, 0x5eed,
                                  /*chunk_rows=*/16)
                  .ok());
  auto opened = io::MappedSampleStore::Open(sidecar);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const uncertain::SampleView mapped = opened.ValueOrDie()->view();
  const uncertain::SampleView flat = resident.view();
  const auto expect_row = [&](std::size_t i) {
    const auto a = flat.ObjectSamples(i);
    const auto b = mapped.ObjectSamples(i);
    ASSERT_EQ(std::vector<double>(a.begin(), a.end()),
              std::vector<double>(b.begin(), b.end()))
        << "object " << i;
  };
  for (std::size_t i = 0; i < ds.size(); ++i) expect_row(i);   // forward
  for (std::size_t i = ds.size(); i-- > 0;) expect_row(i);     // backward
  std::remove(sidecar.c_str());
}

// Sampled-workload determinism sweep: for each sampled algorithm, the
// clustering must be bit-identical across the sample backend (Resident vs
// the mmap-backed .usmp spill), the sidecar chunk size, and the thread
// count — labels, objective, iteration count, and both evaluation counters.
// The mapped arm's budget sits between the pairwise table (60^2 doubles)
// and the sample block (60 * S * 3 doubles), so ONLY the sample backend
// flips; the pairwise store stays dense in every arm and the counters are
// comparable across the whole sweep.
TEST(ParallelDeterminism, SampledWorkloadsBitIdenticalAcrossSampleBackends) {
  const auto ds = TestDataset(60, 3, 3, 51);
  // Dense pairwise table: 60 * 60 * 8 = 28800 bytes. Smallest sample block
  // in the sweep: 60 * 24 * 3 * 8 = 34560 bytes.
  const std::size_t mapped_budget = 30000;
  const auto make = [](const std::string& name,
                       int threads, std::size_t budget,
                       std::size_t chunk_rows)
      -> std::unique_ptr<Clusterer> {
    engine::EngineConfig config;
    config.num_threads = threads;
    config.block_size = 32;
    config.memory_budget_bytes = budget;
    config.sample_chunk_rows = chunk_rows;
    const engine::Engine eng(config);
    if (name == "UK-medoids") {
      UkMedoids::Params p;
      p.use_closed_form = false;  // the sampled fuzzy-distance mode
      auto algo = std::make_unique<UkMedoids>(p);
      algo->set_engine(eng);
      return algo;
    }
    if (name == "FDBSCAN") {
      auto algo = std::make_unique<Fdbscan>();
      algo->set_engine(eng);
      return algo;
    }
    auto algo = std::make_unique<Foptics>();
    algo->set_engine(eng);
    return algo;
  };
  for (const std::string& name :
       {std::string("UK-medoids"), std::string("FDBSCAN"),
        std::string("FOPTICS")}) {
    const ClusteringResult baseline =
        make(name, 1, 0, 16)->Cluster(ds, 3, 13);
    EXPECT_EQ(baseline.pairwise_backend, "dense") << name;
    for (const std::size_t budget : {std::size_t{0}, mapped_budget}) {
      for (const std::size_t chunk_rows : {std::size_t{16}, std::size_t{64}}) {
        for (int threads : kThreadCounts) {
          const ClusteringResult out =
              make(name, threads, budget, chunk_rows)->Cluster(ds, 3, 13);
          const auto label = [&] {
            return name + " budget=" + std::to_string(budget) +
                   " chunk=" + std::to_string(chunk_rows) +
                   " threads=" + std::to_string(threads);
          };
          EXPECT_EQ(out.pairwise_backend, baseline.pairwise_backend)
              << label();
          EXPECT_EQ(out.labels, baseline.labels) << label();
          if (!std::isnan(baseline.objective)) {
            EXPECT_EQ(out.objective, baseline.objective) << label();
          }
          EXPECT_EQ(out.iterations, baseline.iterations) << label();
          EXPECT_EQ(out.ed_evaluations, baseline.ed_evaluations) << label();
          EXPECT_EQ(out.pair_evaluations, baseline.pair_evaluations)
              << label();
        }
      }
    }
  }
}

// The Tiled PairwiseStore backend (engine memory budget smaller than the
// dense table) must preserve the whole-registry determinism contract:
// labels, objective, iterations, and ED evaluation counts independent of
// the thread count. The pairwise consumers (UK-medoids, UAHC, FOPTICS,
// FDBSCAN) exercise tile faulting and LRU reuse; the moment-kernel
// algorithms simply ignore the budget.
TEST(ParallelDeterminism, TiledBackendBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(140, 3, 3, 41);
  // ~10 rows of budget: far below the 140 x 140 dense table, so every
  // pairwise consumer runs tiled.
  const std::size_t budget = 10 * ds.size() * sizeof(double);
  const auto make = [&](const std::string& name, int threads) {
    engine::EngineConfig config;
    config.num_threads = threads;
    config.block_size = 32;
    config.memory_budget_bytes = budget;
    return MakeClustererOrDie(name, engine::Engine(config));
  };
  for (const std::string& name :
       {std::string("UK-medoids"), std::string("UAHC"),
        std::string("FOPTICS"), std::string("FDBSCAN")}) {
    const ClusteringResult baseline = make(name, 1)->Cluster(ds, 3, 13);
    EXPECT_EQ(baseline.pairwise_backend, "tiled") << name;
    for (int threads : {2, 8}) {
      const ClusteringResult out = make(name, threads)->Cluster(ds, 3, 13);
      EXPECT_EQ(out.labels, baseline.labels) << name << " threads=" << threads;
      EXPECT_EQ(out.iterations, baseline.iterations)
          << name << " threads=" << threads;
      EXPECT_EQ(out.ed_evaluations, baseline.ed_evaluations)
          << name << " threads=" << threads;
      EXPECT_EQ(out.table_bytes_peak, baseline.table_bytes_peak)
          << name << " threads=" << threads;
      if (!std::isnan(baseline.objective)) {
        EXPECT_EQ(out.objective, baseline.objective)
            << name << " threads=" << threads;
      }
    }
  }
}

// The tile policies (gather tiles, warm rows, pruned sweeps) are pure
// recompute optimizations: every policy combination must reproduce the
// policy-free serial clustering bit-for-bit, on the tiled backend, at any
// thread count. (Evaluation counts legitimately differ ACROSS policies —
// that is the point — but not across thread counts at a fixed policy.)
TEST(ParallelDeterminism, TilePoliciesBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(140, 3, 3, 43);
  const std::size_t budget = 10 * ds.size() * sizeof(double);
  const auto make = [&](const std::string& name, int threads, bool gather,
                        bool warm, bool pruned) {
    engine::EngineConfig config;
    config.num_threads = threads;
    config.block_size = 32;
    config.memory_budget_bytes = budget;
    config.pairwise_gather_tiles = gather;
    config.pairwise_warm_rows = warm;
    config.pairwise_pruned_sweeps = pruned;
    return MakeClustererOrDie(name, engine::Engine(config));
  };
  for (const std::string& name :
       {std::string("UK-medoids"), std::string("UAHC"),
        std::string("FDBSCAN")}) {
    const ClusteringResult baseline =
        make(name, 1, false, false, false)->Cluster(ds, 3, 13);
    for (const bool gather : {false, true}) {
      for (const bool warm : {false, true}) {
        for (const bool pruned : {false, true}) {
          ClusteringResult serial;
          for (int threads : {1, 2, 8}) {
            const ClusteringResult out =
                make(name, threads, gather, warm, pruned)->Cluster(ds, 3, 13);
            EXPECT_EQ(out.labels, baseline.labels)
                << name << " threads=" << threads << " gather=" << gather
                << " warm=" << warm << " pruned=" << pruned;
            EXPECT_EQ(out.iterations, baseline.iterations) << name;
            if (!std::isnan(baseline.objective)) {
              EXPECT_EQ(out.objective, baseline.objective) << name;
            }
            if (threads == 1) {
              serial = out;
            } else {
              // Recompute effort itself is thread-count independent.
              EXPECT_EQ(out.pair_evaluations, serial.pair_evaluations)
                  << name << " threads=" << threads;
              EXPECT_EQ(out.tile_warm_hits, serial.tile_warm_hits) << name;
              EXPECT_EQ(out.pairs_pruned, serial.pairs_pruned) << name;
            }
          }
        }
      }
    }
  }
}

// The spatial-index knob is a pure recompute optimization with the same
// contract as the tile policies: every structure choice must reproduce the
// index-off clustering bit-for-bit — on the dense AND the tiled backend, at
// any thread count — and the new index counters, being pure functions of
// the data, must be thread-count independent at a fixed (choice, budget).
TEST(ParallelDeterminism, SpatialIndexChoicesBitIdenticalAcrossThreadCounts) {
  const auto ds = TestDataset(140, 3, 3, 45);
  const std::size_t tiled_budget = 10 * ds.size() * sizeof(double);
  const auto make = [&](const std::string& name, int threads,
                        std::size_t budget, const std::string& index) {
    engine::EngineConfig config;
    config.num_threads = threads;
    config.block_size = 32;
    config.memory_budget_bytes = budget;
    config.spatial_index = index;
    return MakeClustererOrDie(name, engine::Engine(config));
  };
  for (const std::string& name :
       {std::string("FDBSCAN"), std::string("FOPTICS"),
        std::string("UK-medoids")}) {
    for (const std::size_t budget : {std::size_t{0}, tiled_budget}) {
      const ClusteringResult off =
          make(name, 1, budget, "off")->Cluster(ds, 3, 13);
      for (const std::string index :
           {std::string("auto"), std::string("rtree"), std::string("grid")}) {
        ClusteringResult serial;
        for (int threads : kThreadCounts) {
          const ClusteringResult out =
              make(name, threads, budget, index)->Cluster(ds, 3, 13);
          EXPECT_EQ(out.labels, off.labels)
              << name << " index=" << index << " budget=" << budget
              << " threads=" << threads;
          EXPECT_EQ(out.iterations, off.iterations)
              << name << " index=" << index << " threads=" << threads;
          if (!std::isnan(off.objective)) {
            EXPECT_EQ(out.objective, off.objective)
                << name << " index=" << index << " threads=" << threads;
          }
          if (threads == 1) {
            serial = out;
          } else {
            EXPECT_EQ(out.index_candidates, serial.index_candidates)
                << name << " index=" << index << " threads=" << threads;
            EXPECT_EQ(out.pairs_pruned_by_index, serial.pairs_pruned_by_index)
                << name << " index=" << index << " threads=" << threads;
            EXPECT_EQ(out.index_bound_tests, serial.index_bound_tests)
                << name << " index=" << index << " threads=" << threads;
            EXPECT_EQ(out.ed_evaluations, serial.ed_evaluations)
                << name << " index=" << index << " threads=" << threads;
            EXPECT_EQ(out.pair_evaluations, serial.pair_evaluations)
                << name << " index=" << index << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(ParallelDeterminism, EveryRegisteredAlgorithmMatchesSerial) {
  // End-to-end sweep over the registry (pruned variants, medoids, density
  // methods included): labels and objective must not depend on the thread
  // count. Small n keeps the quadratic algorithms fast.
  const auto ds = TestDataset(140, 3, 3, 39);
  for (const std::string& name : RegisteredClusterers()) {
    engine::EngineConfig serial_config;
    serial_config.num_threads = 1;
    serial_config.block_size = 32;
    const auto serial_algo =
        MakeClustererOrDie(name, engine::Engine(serial_config));
    const ClusteringResult baseline = serial_algo->Cluster(ds, 3, 13);
    for (int threads : {2, 8}) {
      engine::EngineConfig config;
      config.num_threads = threads;
      config.block_size = 32;
      const auto algo =
          MakeClustererOrDie(name, engine::Engine(config));
      const ClusteringResult out = algo->Cluster(ds, 3, 13);
      EXPECT_EQ(out.labels, baseline.labels)
          << name << " threads=" << threads;
      if (!std::isnan(baseline.objective)) {
        EXPECT_EQ(out.objective, baseline.objective)
            << name << " threads=" << threads;
      }
      EXPECT_EQ(out.iterations, baseline.iterations)
          << name << " threads=" << threads;
      EXPECT_EQ(out.ed_evaluations, baseline.ed_evaluations)
          << name << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace uclust::clustering
