// Unit + property tests for the pdf hierarchy: closed-form moments are
// validated against Monte-Carlo estimates, truncation/regions obey
// Definition 1, and CDFs behave like CDFs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "common/math_utils.h"
#include "common/rng.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/exponential_pdf.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/pdf.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::uncertain {
namespace {

// Monte-Carlo estimates of mean/variance for cross-checking closed forms.
struct McMoments {
  double mean;
  double var;
};

McMoments SampleMoments(const Pdf& pdf, int n, uint64_t seed) {
  common::Rng rng(seed);
  common::RunningStats stats;
  for (int i = 0; i < n; ++i) stats.Add(pdf.Sample(&rng));
  return {stats.mean(), stats.population_variance()};
}

// Numeric integral of the density over the support (trapezoid rule).
double IntegrateDensity(const Pdf& pdf, int steps = 20000) {
  const double lo = pdf.lower();
  const double hi = pdf.upper();
  const double h = (hi - lo) / steps;
  double acc = 0.5 * (pdf.Density(lo) + pdf.Density(hi));
  for (int i = 1; i < steps; ++i) acc += pdf.Density(lo + i * h);
  return acc * h;
}

TEST(UniformPdf, Moments) {
  UniformPdf pdf(2.0, 6.0);
  EXPECT_DOUBLE_EQ(pdf.mean(), 4.0);
  EXPECT_NEAR(pdf.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_NEAR(pdf.second_moment(), pdf.variance() + 16.0, 1e-12);
}

TEST(UniformPdf, DensityAndCdf) {
  UniformPdf pdf(0.0, 2.0);
  EXPECT_DOUBLE_EQ(pdf.Density(1.0), 0.5);
  EXPECT_DOUBLE_EQ(pdf.Density(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Density(2.1), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(pdf.Cdf(2.0), 1.0);
}

TEST(UniformPdf, CenteredFactoryHasRequestedMean) {
  PdfPtr pdf = UniformPdf::Centered(-3.0, 0.5);
  EXPECT_DOUBLE_EQ(pdf->mean(), -3.0);
  EXPECT_DOUBLE_EQ(pdf->lower(), -3.5);
  EXPECT_DOUBLE_EQ(pdf->upper(), -2.5);
}

TEST(UniformPdf, SamplesInsideSupportWithMatchingMoments) {
  UniformPdf pdf(-1.0, 3.0);
  common::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = pdf.Sample(&rng);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 3.0);
  }
  const McMoments mc = SampleMoments(pdf, 200000, 7);
  EXPECT_NEAR(mc.mean, pdf.mean(), 0.01);
  EXPECT_NEAR(mc.var, pdf.variance(), 0.02);
}

TEST(TruncatedNormalPdf, MeanIsExactAndVarianceShrinks) {
  TruncatedNormalPdf pdf(5.0, 2.0);
  EXPECT_DOUBLE_EQ(pdf.mean(), 5.0);
  // Symmetric truncation at +-c sigma shrinks the variance by the textbook
  // factor 1 - 2 c phi(c) / (2 Phi(c) - 1), here evaluated independently.
  const double c = common::kNormal95;
  const double expected_factor =
      1.0 - 2.0 * c * common::NormalPdf(c) /
                (2.0 * common::NormalCdf(c) - 1.0);
  EXPECT_NEAR(pdf.variance() / 4.0, expected_factor, 1e-12);
  EXPECT_NEAR(expected_factor, 0.759, 1e-3);  // sanity anchor
  EXPECT_LT(pdf.variance(), 4.0);
}

TEST(TruncatedNormalPdf, RegionHolds95PercentOfUntruncatedMass) {
  TruncatedNormalPdf pdf(0.0, 1.0);
  EXPECT_NEAR(pdf.lower(), -common::kNormal95, 1e-9);
  EXPECT_NEAR(pdf.upper(), common::kNormal95, 1e-9);
}

TEST(TruncatedNormalPdf, DensityIntegratesToOne) {
  TruncatedNormalPdf pdf(1.0, 0.5);
  EXPECT_NEAR(IntegrateDensity(pdf), 1.0, 1e-6);
}

TEST(TruncatedNormalPdf, CdfEndpoints) {
  TruncatedNormalPdf pdf(0.0, 1.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(pdf.lower()), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(pdf.upper()), 1.0);
  EXPECT_NEAR(pdf.Cdf(0.0), 0.5, 1e-12);
}

TEST(TruncatedNormalPdf, MonteCarloMatchesClosedForm) {
  TruncatedNormalPdf pdf(-2.0, 1.5);
  const McMoments mc = SampleMoments(pdf, 300000, 11);
  EXPECT_NEAR(mc.mean, pdf.mean(), 0.01);
  EXPECT_NEAR(mc.var, pdf.variance(), 0.02);
}

TEST(TruncatedNormalPdf, SamplesStayInRegion) {
  TruncatedNormalPdf pdf(0.0, 1.0);
  common::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = pdf.Sample(&rng);
    EXPECT_GE(x, pdf.lower());
    EXPECT_LE(x, pdf.upper());
  }
}

TEST(TruncatedNormalPdf, CustomCoverage) {
  TruncatedNormalPdf pdf(0.0, 1.0, 0.99);
  EXPECT_NEAR(pdf.Cdf(pdf.upper()), 1.0, 1e-12);
  // 99% region is wider than the 95% one.
  TruncatedNormalPdf narrow(0.0, 1.0, 0.95);
  EXPECT_GT(pdf.upper(), narrow.upper());
  EXPECT_GT(pdf.variance(), narrow.variance());
}

TEST(TruncatedExponentialPdf, TruncatedMeanIsExactlyW) {
  for (double w : {-4.0, 0.0, 3.5}) {
    for (double rate : {0.5, 1.0, 8.0}) {
      TruncatedExponentialPdf pdf(w, rate);
      EXPECT_DOUBLE_EQ(pdf.mean(), w) << "w=" << w << " rate=" << rate;
      const McMoments mc = SampleMoments(pdf, 200000, 13);
      EXPECT_NEAR(mc.mean, w, 5e-3 / rate + 5e-3);
      EXPECT_NEAR(mc.var, pdf.variance(), 0.03 / (rate * rate) + 1e-4);
    }
  }
}

TEST(TruncatedExponentialPdf, RegionSpansQ95OverRate) {
  TruncatedExponentialPdf pdf(0.0, 2.0);
  EXPECT_NEAR(pdf.upper() - pdf.lower(), common::kExp95 / 2.0, 1e-12);
  EXPECT_LE(pdf.lower(), pdf.mean());
  EXPECT_GE(pdf.upper(), pdf.mean());
}

TEST(TruncatedExponentialPdf, DensityIntegratesToOne) {
  TruncatedExponentialPdf pdf(1.0, 3.0);
  EXPECT_NEAR(IntegrateDensity(pdf), 1.0, 1e-6);
}

TEST(TruncatedExponentialPdf, CdfEndpointsAndMonotonicity) {
  TruncatedExponentialPdf pdf(0.0, 1.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(pdf.lower()), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(pdf.upper()), 1.0);
  double prev = -1.0;
  for (int i = 0; i <= 20; ++i) {
    const double x = pdf.lower() + i * (pdf.upper() - pdf.lower()) / 20.0;
    const double c = pdf.Cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(TruncatedExponentialPdf, SkewedRight) {
  TruncatedExponentialPdf pdf(0.0, 1.0);
  // Density is maximal at the lower end of the support.
  EXPECT_GT(pdf.Density(pdf.lower() + 1e-9), pdf.Density(pdf.mean()));
  EXPECT_GT(pdf.Density(pdf.mean()), pdf.Density(pdf.upper() - 1e-9));
}

TEST(DiracPdf, DegenerateMoments) {
  DiracPdf pdf(3.0);
  EXPECT_DOUBLE_EQ(pdf.mean(), 3.0);
  EXPECT_DOUBLE_EQ(pdf.second_moment(), 9.0);
  EXPECT_DOUBLE_EQ(pdf.variance(), 0.0);
  EXPECT_DOUBLE_EQ(pdf.lower(), 3.0);
  EXPECT_DOUBLE_EQ(pdf.upper(), 3.0);
}

TEST(DiracPdf, SamplingAndCdf) {
  DiracPdf pdf(-1.5);
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(pdf.Sample(&rng), -1.5);
  EXPECT_DOUBLE_EQ(pdf.Cdf(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(-1.5), 1.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(0.0), 1.0);
}

TEST(DiscretePdf, MomentsMatchHandComputation) {
  DiscretePdf pdf({1.0, 3.0}, {1.0, 3.0});  // weights normalize to 1/4, 3/4
  EXPECT_DOUBLE_EQ(pdf.mean(), 0.25 * 1.0 + 0.75 * 3.0);
  EXPECT_DOUBLE_EQ(pdf.second_moment(), 0.25 * 1.0 + 0.75 * 9.0);
  EXPECT_DOUBLE_EQ(pdf.lower(), 1.0);
  EXPECT_DOUBLE_EQ(pdf.upper(), 3.0);
}

TEST(DiscretePdf, UniformFactoryAndSampling) {
  PdfPtr pdf = DiscretePdf::Uniformly({0.0, 10.0});
  EXPECT_DOUBLE_EQ(pdf->mean(), 5.0);
  common::Rng rng(17);
  int tens = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = pdf->Sample(&rng);
    EXPECT_TRUE(x == 0.0 || x == 10.0);
    if (x == 10.0) ++tens;
  }
  EXPECT_NEAR(tens / 10000.0, 0.5, 0.03);
}

TEST(DiscretePdf, CdfSteps) {
  DiscretePdf pdf({1.0, 2.0, 3.0}, {1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(pdf.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(pdf.Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(pdf.Cdf(3.0), 1.0);
}

TEST(Pdf, VarianceNeverNegative) {
  // Cancellation guard: mean^2 ~ second moment for tight pdfs far from 0.
  TruncatedNormalPdf pdf(1e8, 1e-6);
  EXPECT_GE(pdf.variance(), 0.0);
}

// Property sweep: every family reports mean/second_moment consistent with
// its own samples and keeps all samples inside the region (Definition 1).
using FamilyParam = std::tuple<const char*, double, double>;  // name, w, scale

class PdfFamilyProperty : public ::testing::TestWithParam<FamilyParam> {
 protected:
  PdfPtr MakePdf() const {
    const auto& [family, w, scale] = GetParam();
    if (std::string(family) == "uniform") {
      return UniformPdf::Centered(w, scale * std::sqrt(3.0));
    }
    if (std::string(family) == "normal") {
      return TruncatedNormalPdf::Make(w, scale);
    }
    return TruncatedExponentialPdf::Make(w, 1.0 / scale);
  }
};

TEST_P(PdfFamilyProperty, MeanIsW) {
  EXPECT_DOUBLE_EQ(MakePdf()->mean(), std::get<1>(GetParam()));
}

TEST_P(PdfFamilyProperty, SecondMomentConsistent) {
  PdfPtr pdf = MakePdf();
  EXPECT_NEAR(pdf->second_moment(),
              pdf->variance() + pdf->mean() * pdf->mean(),
              1e-9 * (1.0 + std::fabs(pdf->second_moment())));
}

TEST_P(PdfFamilyProperty, SamplesInsideRegion) {
  PdfPtr pdf = MakePdf();
  common::Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const double x = pdf->Sample(&rng);
    EXPECT_GE(x, pdf->lower());
    EXPECT_LE(x, pdf->upper());
  }
}

TEST_P(PdfFamilyProperty, MonteCarloVarianceMatches) {
  PdfPtr pdf = MakePdf();
  const McMoments mc = SampleMoments(*pdf, 150000, 31);
  const double scale = std::get<2>(GetParam());
  EXPECT_NEAR(mc.var, pdf->variance(), 0.05 * scale * scale + 1e-9);
}

TEST_P(PdfFamilyProperty, CdfReachesOneAtUpper) {
  PdfPtr pdf = MakePdf();
  EXPECT_NEAR(pdf->Cdf(pdf->upper()), 1.0, 1e-12);
  EXPECT_NEAR(pdf->Cdf(pdf->lower()), 0.0, 1e-12);
}

std::string FamilyParamName(
    const ::testing::TestParamInfo<FamilyParam>& param_info) {
  std::string name = std::get<0>(param_info.param);
  name += "_w" + std::to_string(
                     static_cast<int>(std::get<1>(param_info.param) * 10 +
                                      100));
  name +=
      "_s" + std::to_string(static_cast<int>(std::get<2>(param_info.param) *
                                             10));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, PdfFamilyProperty,
    ::testing::Combine(::testing::Values("uniform", "normal", "exponential"),
                       ::testing::Values(-5.0, 0.0, 2.5),
                       ::testing::Values(0.1, 1.0, 4.0)),
    FamilyParamName);

}  // namespace
}  // namespace uclust::uncertain
