// Tests for the SampleStore abstraction: the Resident and Mapped backends
// serve bit-identical sample bytes (element-wise, across chunk shapes, and
// for any builder batch partition), corrupt/truncated/foreign-endian .usmp
// sidecars are rejected instead of mis-parsed, sidecar reuse honors the
// extended staleness guard (source size/mtime/probe PLUS samples-per-object
// and draw seed), a registry-annotated sidecar pin is honored only when its
// header matches the requested (S, seed), temp spills self-delete, and the
// factory's failure policy falls back to the Resident backend.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "engine/engine.h"
#include "io/binary_format.h"
#include "io/dataset_reader.h"
#include "io/dataset_writer.h"
#include "io/mmap_file.h"
#include "io/sample_file.h"
#include "io/sample_format.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/exponential_pdf.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/sample_store.h"
#include "uncertain/uniform_pdf.h"

namespace uclust {
namespace {

using uncertain::PdfPtr;
using uncertain::ResidentSampleStore;
using uncertain::SampleBackend;
using uncertain::SampleStorePtr;
using uncertain::SampleView;
using uncertain::UncertainObject;

std::string TempPath(const std::string& file) {
  return ::testing::TempDir() + file;
}

// Objects cycling through every serializable pdf family (mirrors
// tests/test_moment_store.cc so the sidecar sees irregular parameters).
std::vector<UncertainObject> MakeTestObjects(std::size_t n, std::size_t m,
                                             uint64_t seed) {
  std::vector<UncertainObject> objects;
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<PdfPtr> dims;
    for (std::size_t j = 0; j < m; ++j) {
      const double w = rng.Uniform(-3.0, 3.0);
      const double scale = rng.Uniform(0.05, 0.4);
      switch ((i + j) % 4) {
        case 0:
          dims.push_back(uncertain::UniformPdf::Centered(w, scale));
          break;
        case 1:
          dims.push_back(uncertain::TruncatedNormalPdf::Make(w, scale));
          break;
        case 2:
          dims.push_back(
              uncertain::TruncatedExponentialPdf::Make(w, 1.0 / scale));
          break;
        default:
          dims.push_back(uncertain::DiracPdf::Make(w));
      }
    }
    objects.emplace_back(std::move(dims));
  }
  return objects;
}

std::string WriteTestFile(const std::string& file,
                          const std::vector<UncertainObject>& objects) {
  const std::string path = TempPath(file);
  io::BinaryDatasetWriter writer;
  EXPECT_TRUE(writer
                  .Open(path, objects[0].dims(), "sample-store-test", 3,
                        /*with_labels=*/true)
                  .ok());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_TRUE(writer.Append(objects[i], static_cast<int>(i % 3)).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

// Loads a file-backed dataset (annotated with its source path, which the
// factory's sidecar reuse guard keys off).
data::UncertainDataset LoadDataset(const std::string& path) {
  auto ds = io::ReadUncertainDataset(path);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).ValueOrDie();
}

// Bit-exact element-wise comparison of two sample views.
void ExpectSamplesBitIdentical(const SampleView& a, const SampleView& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.samples_per_object(), b.samples_per_object());
  ASSERT_EQ(a.dims(), b.dims());
  const std::size_t row =
      static_cast<std::size_t>(a.samples_per_object()) * a.dims();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(a.ObjectSamples(i).data(),
                             b.ObjectSamples(i).data(), row * sizeof(double)))
        << "object row " << i;
  }
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
}

// Opens a forced-backend store over `ds`.
SampleStorePtr OpenStore(const data::UncertainDataset& ds,
                         int samples_per_object, uint64_t seed,
                         io::SampleBackendChoice choice,
                         const engine::Engine& eng = engine::Engine::Serial(),
                         std::size_t chunk_rows = 0,
                         const std::string& sidecar = "", bool reuse = true) {
  io::SampleStoreOptions options;
  options.backend = choice;
  options.chunk_rows = chunk_rows;
  options.sidecar_path = sidecar;
  options.reuse_sidecar = reuse;
  auto store = io::MakeSampleStore(ds, samples_per_object, seed, eng, options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).ValueOrDie();
}

TEST(SampleStoreTest, ChunkBoundarySweepIsBitIdentical) {
  // n deliberately not divisible by any chunk size; sweep chunk shapes from
  // "more chunks than the per-thread window LRU holds" (chunk_rows=1 ->
  // 97 chunks > kSampleWindowSlots, forcing eviction + refault) to "one
  // chunk covering everything".
  const auto objects = MakeTestObjects(97, 3, /*seed=*/7);
  const std::string path = WriteTestFile("smp_chunksweep.ubin", objects);
  const auto ds = LoadDataset(path);
  const ResidentSampleStore reference(ds.objects(), /*samples=*/6, 0x5eed);

  for (const std::size_t chunk_rows :
       {std::size_t{1}, std::size_t{8}, std::size_t{32}, std::size_t{128}}) {
    const std::string sidecar =
        TempPath("smp_chunksweep" + std::to_string(chunk_rows) + ".usmp");
    const SampleStorePtr store =
        OpenStore(ds, 6, 0x5eed, io::SampleBackendChoice::kMapped,
                  engine::Engine::Serial(), chunk_rows, sidecar);
    ASSERT_EQ(SampleBackend::kMapped, store->backend());
    EXPECT_TRUE(store->view().chunked());
    EXPECT_EQ(chunk_rows, store->view().chunk_rows());
    ExpectSamplesBitIdentical(reference.view(), store->view());
    // Sequential second pass: re-faulting evicted chunks must reproduce the
    // same bytes.
    ExpectSamplesBitIdentical(reference.view(), store->view());
    std::remove(sidecar.c_str());
  }
  std::remove(path.c_str());
}

TEST(SampleStoreTest, SpillMatchesResidentForAnyBatchPartition) {
  const auto objects = MakeTestObjects(53, 3, /*seed=*/31);
  const std::string path = WriteTestFile("smp_spill.ubin", objects);
  const ResidentSampleStore reference(objects, /*samples=*/5, 0x5eed);

  engine::EngineConfig threaded;
  threaded.num_threads = 3;
  threaded.block_size = 4;
  const engine::Engine engines[] = {engine::Engine::Serial(),
                                    engine::Engine(threaded)};
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{5}, std::size_t{53}, std::size_t{60}}) {
    for (const engine::Engine& eng : engines) {
      const std::string sidecar = TempPath("smp_spill.usmp");
      ASSERT_TRUE(io::BuildSampleSidecar(path, sidecar, /*samples=*/5, 0x5eed,
                                         eng, /*chunk_rows=*/8, batch)
                      .ok());
      auto store = io::MappedSampleStore::Open(sidecar);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ExpectSamplesBitIdentical(reference.view(), store.ValueOrDie()->view());
      // Where this build supports mmap, the windows must actually have come
      // from mmap — a silent 100% heap-read fallback would invalidate the
      // out-of-core design while passing every value check.
      EXPECT_EQ(io::MmapSupported(), store.ValueOrDie()->used_mmap());
      std::remove(sidecar.c_str());
    }
  }
  std::remove(path.c_str());
}

TEST(SampleStoreTest, WriteSampleFileRoundTripsAnyView) {
  const auto objects = MakeTestObjects(41, 2, /*seed=*/3);
  const ResidentSampleStore reference(objects, /*samples=*/4, 0x5eed);
  const std::string sidecar = TempPath("smp_roundtrip.usmp");
  ASSERT_TRUE(io::WriteSampleFile(reference.view(), sidecar, 0x5eed,
                                  /*chunk_rows=*/4)
                  .ok());
  auto store = io::MappedSampleStore::Open(sidecar);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectSamplesBitIdentical(reference.view(), store.ValueOrDie()->view());
  EXPECT_EQ(0x5eedu, store.ValueOrDie()->seed());

  // A chunked view is a valid source too (mapped -> file -> mapped).
  const std::string copy = TempPath("smp_roundtrip2.usmp");
  ASSERT_TRUE(io::WriteSampleFile(store.ValueOrDie()->view(), copy, 0x5eed,
                                  /*chunk_rows=*/16)
                  .ok());
  auto store2 = io::MappedSampleStore::Open(copy);
  ASSERT_TRUE(store2.ok()) << store2.status().ToString();
  ExpectSamplesBitIdentical(reference.view(), store2.ValueOrDie()->view());
  std::remove(copy.c_str());
  std::remove(sidecar.c_str());
}

TEST(SampleStoreTest, AutoBackendSelectionFollowsBudget) {
  const auto objects = MakeTestObjects(60, 3, /*seed=*/17);
  const std::string path = WriteTestFile("smp_budget.ubin", objects);
  const auto ds = LoadDataset(path);
  constexpr int kSamples = 8;
  const std::size_t resident_bytes = 60 * kSamples * 3 * sizeof(double);

  struct Case {
    std::size_t budget;
    SampleBackend expected;
  };
  const Case cases[] = {
      {0, SampleBackend::kResident},  // unlimited
      {resident_bytes, SampleBackend::kResident},
      {resident_bytes - 1, SampleBackend::kMapped},
      {1, SampleBackend::kMapped},
  };
  for (const Case& c : cases) {
    engine::EngineConfig config;
    config.memory_budget_bytes = c.budget;
    const engine::Engine eng(config);
    const SampleStorePtr store =
        OpenStore(ds, kSamples, 0x5eed, io::SampleBackendChoice::kAuto, eng, 0,
                  TempPath("smp_budget.usmp"));
    EXPECT_EQ(c.expected, store->backend()) << "budget " << c.budget;
    if (c.expected == SampleBackend::kMapped) {
      // With no explicit chunk hint, auto-sizing bounds the per-thread
      // window cache by the budget. The floor is 16 rows — 4x smaller than
      // the moment store's, because a sample row is S times wider.
      EXPECT_EQ(16u, store->view().chunk_rows()) << "budget " << c.budget;
    }
  }
  std::remove(TempPath("smp_budget.usmp").c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, SidecarReuseHonorsStalenessGuard) {
  const auto objects = MakeTestObjects(30, 2, /*seed=*/23);
  const std::string path = WriteTestFile("smp_reuse.ubin", objects);
  const std::string sidecar = TempPath("smp_reuse.usmp");
  const auto ds = LoadDataset(path);
  const ResidentSampleStore reference(ds.objects(), /*samples=*/4, 0x5eed);
  const auto open = [&](bool reuse) {
    return OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped,
                     engine::Engine::Serial(), 8, sidecar, reuse);
  };

  // First open builds the sidecar.
  ExpectSamplesBitIdentical(reference.view(), open(true)->view());

  // Poison one payload double in place (same size, header untouched). A
  // reusing open must serve the poisoned byte — proof it did NOT rebuild.
  const double poison = 1234.5;
  const auto poison_payload = [&] {
    std::vector<char> bytes = ReadFileBytes(sidecar);
    std::memcpy(bytes.data() + io::kSampleHeaderBytes, &poison,
                sizeof(poison));
    WriteFileBytes(sidecar, bytes);
  };
  poison_payload();
  EXPECT_EQ(poison, open(true)->view().ObjectSamples(0)[0]);

  // reuse=false must rebuild and restore the true value.
  ExpectSamplesBitIdentical(reference.view(), open(false)->view());

  // A sidecar whose stored source size mismatches the dataset is stale:
  // rewrite the guard field (offset 56) and expect a silent rebuild even
  // with reuse on.
  {
    std::vector<char> bytes = ReadFileBytes(sidecar);
    const uint64_t wrong_source = 1;
    std::memcpy(bytes.data() + 56, &wrong_source, sizeof(wrong_source));
    WriteFileBytes(sidecar, bytes);
  }
  ExpectSamplesBitIdentical(reference.view(), open(true)->view());

  // The guard extends the moment store's with the DRAW parameters. A
  // sidecar recording a different master seed (offset 48) is not the
  // requested artifact: poison the payload too, and prove the poison does
  // NOT survive — the store rebuilt instead of reusing.
  {
    std::vector<char> bytes = ReadFileBytes(sidecar);
    const uint64_t other_seed = 0x5eee;
    std::memcpy(bytes.data() + 48, &other_seed, sizeof(other_seed));
    std::memcpy(bytes.data() + io::kSampleHeaderBytes, &poison,
                sizeof(poison));
    WriteFileBytes(sidecar, bytes);
  }
  ExpectSamplesBitIdentical(reference.view(), open(true)->view());

  // Same for samples-per-object (offset 32): the header's size check fails
  // for the declared S, so the file is invalid and silently rebuilt.
  {
    std::vector<char> bytes = ReadFileBytes(sidecar);
    const uint64_t wrong_samples = 5;
    std::memcpy(bytes.data() + 32, &wrong_samples, sizeof(wrong_samples));
    std::memcpy(bytes.data() + io::kSampleHeaderBytes, &poison,
                sizeof(poison));
    WriteFileBytes(sidecar, bytes);
  }
  ExpectSamplesBitIdentical(reference.view(), open(true)->view());

  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, SidecarReuseRespectsChunkRequirement) {
  const auto objects = MakeTestObjects(40, 2, /*seed=*/61);
  const std::string path = WriteTestFile("smp_chunkreq.ubin", objects);
  const std::string sidecar = TempPath("smp_chunkreq.usmp");
  const auto ds = LoadDataset(path);
  const auto open = [&](std::size_t chunk_rows) {
    return OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped,
                     engine::Engine::Serial(), chunk_rows, sidecar);
  };

  // Build with 8-row chunks.
  EXPECT_EQ(8u, open(8)->view().chunk_rows());
  // A larger requirement reuses the smaller-chunk sidecar (window memory
  // only shrinks).
  EXPECT_EQ(8u, open(32)->view().chunk_rows());
  // A smaller requirement must rebuild: serving 8-row chunks when the
  // caller sized windows for 4 would exceed the memory bound.
  const SampleStorePtr rebuilt = open(4);
  EXPECT_EQ(4u, rebuilt->view().chunk_rows());
  const ResidentSampleStore reference(ds.objects(), 4, 0x5eed);
  ExpectSamplesBitIdentical(reference.view(), rebuilt->view());
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, SidecarRebuiltWhenDatasetRegeneratedInPlace) {
  // Regenerating a dataset in place with fixed-size records reproduces the
  // exact byte count, and on coarse filesystems the rewrite can land in the
  // same mtime tick (this test deliberately does NOT touch timestamps) —
  // the content-probe part of the guard must catch it and force a rebuild.
  const auto objects_v1 = MakeTestObjects(24, 2, /*seed=*/51);
  const std::string path = WriteTestFile("smp_regen.ubin", objects_v1);
  const std::size_t v1_bytes = ReadFileBytes(path).size();
  const std::string sidecar = TempPath("smp_regen.usmp");
  {
    const auto ds = LoadDataset(path);
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar);
    ExpectSamplesBitIdentical(ResidentSampleStore(objects_v1, 4, 0x5eed).view(),
                              store->view());
  }

  // Same n/m/pdf-family cycle, different seed: identical byte size, so the
  // size guard alone would wrongly reuse the v1 sidecar.
  const auto objects_v2 = MakeTestObjects(24, 2, /*seed=*/52);
  const std::string path2 = WriteTestFile("smp_regen.ubin", objects_v2);
  ASSERT_EQ(path, path2);
  ASSERT_EQ(v1_bytes, ReadFileBytes(path).size());

  const auto ds = LoadDataset(path);
  const SampleStorePtr store =
      OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped,
                engine::Engine::Serial(), 8, sidecar, /*reuse=*/true);
  ExpectSamplesBitIdentical(ResidentSampleStore(objects_v2, 4, 0x5eed).view(),
                            store->view());
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, FailedRebuildPreservesExistingSidecar) {
  const auto objects = MakeTestObjects(25, 2, /*seed=*/71);
  const std::string path = WriteTestFile("smp_failsafe.ubin", objects);
  const std::string sidecar = TempPath("smp_failsafe.usmp");
  const ResidentSampleStore reference(objects, 4, 0x5eed);
  const auto ds = LoadDataset(path);  // loaded BEFORE the corruption below
  {
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped,
                  engine::Engine::Serial(), 8, sidecar);
    ExpectSamplesBitIdentical(reference.view(), store->view());
  }

  // Corrupt the dataset so (a) the staleness probe forces a rebuild and
  // (b) that rebuild — which streams from the source file, not from the
  // resident objects — fails mid-stream: the first object's length prefix
  // (at header 64 + name "sample-store-test" 17) claims more bytes than
  // the file holds. The file header itself stays valid, so the failure
  // happens after the temp writer opened — exactly the dangerous window.
  std::vector<char> bytes = ReadFileBytes(path);
  const uint32_t huge_payload = 0xffffffffu;
  std::memcpy(bytes.data() + 64 + 17, &huge_payload, sizeof(huge_payload));
  WriteFileBytes(path, bytes);
  io::SampleStoreOptions options;
  options.backend = io::SampleBackendChoice::kMapped;
  options.sidecar_path = sidecar;
  const auto failed =
      io::MakeSampleStore(ds, 4, 0x5eed, engine::Engine::Serial(), options);
  EXPECT_FALSE(failed.ok());

  // The previously built sidecar must have survived the failed rebuild
  // intact (the rebuild goes through a temp sibling + rename).
  auto survived = io::MappedSampleStore::Open(sidecar);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  ExpectSamplesBitIdentical(reference.view(), survived.ValueOrDie()->view());
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, TempSpillSelfDeletesWithTheStore) {
  // In-memory dataset (no source path, no annotation): the Mapped backend
  // spills into a temp .usmp that is unlinked when the store dies.
  const auto objects = MakeTestObjects(20, 2, /*seed=*/81);
  data::UncertainDataset ds("inmem", objects, {}, 0);
  const ResidentSampleStore reference(objects, 4, 0x5eed);
  std::string spill;
  {
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped);
    spill = store->sidecar_path();
    ASSERT_FALSE(spill.empty());
    EXPECT_TRUE(std::filesystem::exists(spill));
    ExpectSamplesBitIdentical(reference.view(), store->view());
  }
  EXPECT_FALSE(std::filesystem::exists(spill))
      << "temp spill leaked: " << spill;
}

TEST(SampleStoreTest, DefaultSidecarIsReusedAcrossFactoryCalls) {
  // A file-backed dataset with no explicit sidecar gets the param-encoded
  // default path next to its source; a second store over the same (S, seed)
  // must reuse it. Poison proves the reuse (and distinguishes it from a
  // silent rebuild).
  const auto objects = MakeTestObjects(30, 2, /*seed=*/91);
  const std::string path = WriteTestFile("smp_default.ubin", objects);
  const auto ds = LoadDataset(path);
  const std::string sidecar = io::DefaultSampleSidecarPath(path, 4, 0x5eed);
  {
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped);
    EXPECT_EQ(sidecar, store->sidecar_path());
  }
  ASSERT_TRUE(std::filesystem::exists(sidecar));
  std::vector<char> bytes = ReadFileBytes(sidecar);
  const double poison = 4321.5;
  std::memcpy(bytes.data() + io::kSampleHeaderBytes, &poison, sizeof(poison));
  WriteFileBytes(sidecar, bytes);
  {
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped);
    EXPECT_EQ(poison, store->view().ObjectSamples(0)[0]);
  }
  // A different seed encodes a different default path — no churn of the
  // first sidecar.
  EXPECT_NE(sidecar, io::DefaultSampleSidecarPath(path, 4, 0x5eee));
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, AnnotatedSidecarReusedOnlyWhenHeaderMatches) {
  // A registry-annotated sidecar pins one (S, seed) artifact. A matching
  // request must reuse it in place; a mismatched request must leave the
  // pinned bytes untouched and fall through to the param-encoded default
  // path — each sampled algorithm carries a distinct default sample_seed,
  // so honoring the pin unconditionally would rebuild-overwrite the shared
  // file on every alternating job.
  const auto objects = MakeTestObjects(25, 2, /*seed=*/83);
  const std::string path = WriteTestFile("smp_annotated.ubin", objects);
  auto ds = LoadDataset(path);
  const std::string pinned = TempPath("smp_annotated_pin.usmp");
  {
    // Emit the pinned artifact with seed 0x5eed (as dataset_gen would).
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped,
                  engine::Engine::Serial(), /*chunk_rows=*/0, pinned);
    EXPECT_EQ(pinned, store->sidecar_path());
  }
  ds.set_samples_sidecar_path(pinned);
  const std::vector<char> pinned_bytes = ReadFileBytes(pinned);

  {
    // Matching (S, seed): the pin is honored.
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eed, io::SampleBackendChoice::kMapped);
    EXPECT_EQ(pinned, store->sidecar_path());
  }
  {
    // Mismatched seed: the store lands on the default sibling and the
    // pinned file survives bit-for-bit.
    const SampleStorePtr store =
        OpenStore(ds, 4, 0x5eee, io::SampleBackendChoice::kMapped);
    EXPECT_EQ(io::DefaultSampleSidecarPath(path, 4, 0x5eee),
              store->sidecar_path());
    EXPECT_EQ(pinned_bytes, ReadFileBytes(pinned));
  }
  {
    // Mismatched samples-per-object likewise.
    const SampleStorePtr store =
        OpenStore(ds, 8, 0x5eed, io::SampleBackendChoice::kMapped);
    EXPECT_EQ(io::DefaultSampleSidecarPath(path, 8, 0x5eed),
              store->sidecar_path());
    EXPECT_EQ(pinned_bytes, ReadFileBytes(pinned));
  }
  std::remove(io::DefaultSampleSidecarPath(path, 4, 0x5eee).c_str());
  std::remove(io::DefaultSampleSidecarPath(path, 8, 0x5eed).c_str());
  std::remove(pinned.c_str());
  std::remove(path.c_str());
}

TEST(SampleStoreTest, FactoryFailureFallsBackToResident) {
  // The clusterer-facing wrapper has no status channel: a factory failure
  // (here a source annotation that cannot be stat'ed for the staleness
  // guard) must degrade to the (value-identical) Resident backend instead
  // of failing the clustering.
  const auto objects = MakeTestObjects(20, 2, /*seed=*/95);
  data::UncertainDataset ds("inmem", objects, {}, 0);
  ds.set_source_path("/nonexistent-dir/missing.ubin");
  engine::EngineConfig config;
  config.memory_budget_bytes = 1;  // forces the Mapped choice
  const SampleStorePtr store =
      io::MakeSampleStoreOrResident(ds, 4, 0x5eed, engine::Engine(config));
  ASSERT_NE(nullptr, store);
  EXPECT_EQ(SampleBackend::kResident, store->backend());
  ExpectSamplesBitIdentical(ResidentSampleStore(objects, 4, 0x5eed).view(),
                            store->view());
}

TEST(SampleFormatTest, RejectsForeignEndianSidecars) {
  const ResidentSampleStore ref(MakeTestObjects(10, 2, /*seed=*/5), 4, 0x5eed);
  const std::string sidecar = TempPath("smp_endian.usmp");
  ASSERT_TRUE(io::WriteSampleFile(ref.view(), sidecar, 0x5eed).ok());
  std::vector<char> bytes = ReadFileBytes(sidecar);
  const uint32_t swapped = io::kEndianTagSwapped;
  std::memcpy(bytes.data() + 8, &swapped, sizeof(swapped));
  WriteFileBytes(sidecar, bytes);

  const auto result = io::MappedSampleStore::Open(sidecar);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string::npos, result.status().message().find("endian"))
      << result.status().ToString();
  std::remove(sidecar.c_str());
}

TEST(SampleFormatTest, RejectsNewerVersionsAndBadMagic) {
  const ResidentSampleStore ref(MakeTestObjects(10, 2, /*seed=*/5), 4, 0x5eed);
  const std::string sidecar = TempPath("smp_version.usmp");
  ASSERT_TRUE(io::WriteSampleFile(ref.view(), sidecar, 0x5eed).ok());
  const std::vector<char> bytes = ReadFileBytes(sidecar);

  std::vector<char> future = bytes;
  const uint32_t version = io::kSampleFormatVersion + 7;
  std::memcpy(future.data() + 12, &version, sizeof(version));
  WriteFileBytes(sidecar, future);
  EXPECT_FALSE(io::MappedSampleStore::Open(sidecar).ok());

  std::vector<char> magic = bytes;
  magic[0] = 'x';
  WriteFileBytes(sidecar, magic);
  EXPECT_FALSE(io::MappedSampleStore::Open(sidecar).ok());

  WriteFileBytes(sidecar, std::vector<char>(10, 'x'));  // shorter than header
  EXPECT_FALSE(io::MappedSampleStore::Open(sidecar).ok());
  std::remove(sidecar.c_str());
}

TEST(SampleFormatTest, RejectsTruncatedAndPaddedSidecars) {
  const ResidentSampleStore ref(MakeTestObjects(20, 3, /*seed=*/9), 4, 0x5eed);
  const std::string sidecar = TempPath("smp_size.usmp");
  ASSERT_TRUE(io::WriteSampleFile(ref.view(), sidecar, 0x5eed).ok());
  const std::vector<char> bytes = ReadFileBytes(sidecar);

  std::vector<char> truncated = bytes;
  truncated.resize(bytes.size() - 8);
  WriteFileBytes(sidecar, truncated);
  EXPECT_FALSE(io::MappedSampleStore::Open(sidecar).ok());

  std::vector<char> padded = bytes;
  padded.push_back('x');
  WriteFileBytes(sidecar, padded);
  EXPECT_FALSE(io::MappedSampleStore::Open(sidecar).ok());
  std::remove(sidecar.c_str());
}

TEST(SampleFormatTest, RejectsNonPowerOfTwoChunkRows) {
  const ResidentSampleStore ref(MakeTestObjects(10, 2, /*seed=*/5), 4, 0x5eed);
  const std::string sidecar = TempPath("smp_chunkpow.usmp");
  ASSERT_TRUE(io::WriteSampleFile(ref.view(), sidecar, 0x5eed).ok());
  std::vector<char> bytes = ReadFileBytes(sidecar);
  const uint64_t odd_rows = 3;
  std::memcpy(bytes.data() + 40, &odd_rows, sizeof(odd_rows));
  WriteFileBytes(sidecar, bytes);
  const auto result = io::MappedSampleStore::Open(sidecar);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string::npos,
            result.status().message().find("power of two"))
      << result.status().ToString();
  std::remove(sidecar.c_str());
}

TEST(SampleFormatTest, NormalizeChunkRowsRoundsUpToPowersOfTwo) {
  EXPECT_EQ(io::kDefaultSampleChunkRows, io::NormalizeSampleChunkRows(0));
  EXPECT_EQ(1u, io::NormalizeSampleChunkRows(1));
  EXPECT_EQ(8u, io::NormalizeSampleChunkRows(5));
  EXPECT_EQ(512u, io::NormalizeSampleChunkRows(512));
  EXPECT_EQ(std::size_t{1} << 20,
            io::NormalizeSampleChunkRows((std::size_t{1} << 20) + 1));
}

}  // namespace
}  // namespace uclust
