// Tests for the service layer: JobSpec validation, the dataset registry,
// admission control (serialization of over-budget jobs, rejection at
// submit), job lifecycle + cancellation, the canonical ClusteringResult
// serialization against its golden file, and the full REST route surface
// through ClusteringService::Handle (socket-free) — including a
// fingerprint match between a service job and a direct in-process run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "clustering/ckmeans.h"
#include "clustering/result_json.h"
#include "common/json.h"
#include "data/synthetic_gen.h"
#include "service/dataset_registry.h"
#include "service/job_manager.h"
#include "service/job_spec.h"
#include "service/log.h"
#include "service/service.h"

namespace uclust::service {
namespace {

// One small labeled dataset file shared by every test in this binary.
const std::string& TestDatasetPath() {
  static const std::string path = [] {
    const std::string p = testing::TempDir() + "/uclust_service_test.ubin";
    data::SyntheticGenParams params;
    params.n = 120;
    params.m = 4;
    params.classes = 3;
    params.seed = 7;
    const common::Status st =
        data::WriteSyntheticDataset(params, p, "service-test");
    if (!st.ok()) {
      std::fprintf(stderr, "fixture dataset: %s\n", st.ToString().c_str());
      std::abort();
    }
    return p;
  }();
  return path;
}

// ------------------------------------------------------------- JobSpec --

TEST(JobSpec, MinimalValidBody) {
  auto spec = JobSpec::FromJson("{\"dataset_id\": \"ds-1\", \"k\": 3}");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.ValueOrDie().dataset_id, "ds-1");
  EXPECT_EQ(spec.ValueOrDie().k, 3);
  EXPECT_EQ(spec.ValueOrDie().algorithm, "CK-means");
  EXPECT_EQ(spec.ValueOrDie().max_iters, 100);
  EXPECT_TRUE(spec.ValueOrDie().include_labels);
}

TEST(JobSpec, FullBodyWithEngineKnobs) {
  auto spec = JobSpec::FromJson(
      "{\"dataset_id\": \"ds-2\", \"algorithm\": \"UK-means\", \"k\": 8,"
      " \"seed\": 42, \"max_iters\": 25, \"include_labels\": false,"
      " \"engine\": {\"threads\": 4, \"memory_budget_mb\": 64,"
      "              \"ukmeans_bound_pruning\": false}}");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const JobSpec& s = spec.ValueOrDie();
  EXPECT_EQ(s.algorithm, "UK-means");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.max_iters, 25);
  EXPECT_FALSE(s.include_labels);
  EXPECT_EQ(s.engine.num_threads, 4);
  EXPECT_EQ(s.engine.memory_budget_bytes, 64u * 1024 * 1024);
  EXPECT_FALSE(s.engine.ukmeans_bound_pruning);
  EXPECT_EQ(s.engine_knobs.size(), 3u);
}

TEST(JobSpec, RejectsInvalidBodies) {
  EXPECT_FALSE(JobSpec::FromJson("not json").ok());
  EXPECT_FALSE(JobSpec::FromJson("[]").ok());  // must be an object
  EXPECT_FALSE(JobSpec::FromJson("{\"k\": 3}").ok());  // no dataset_id
  EXPECT_FALSE(JobSpec::FromJson("{\"dataset_id\": \"d\"}").ok());  // no k
  EXPECT_FALSE(
      JobSpec::FromJson("{\"dataset_id\": \"d\", \"k\": 0}").ok());
  EXPECT_FALSE(
      JobSpec::FromJson("{\"dataset_id\": \"d\", \"k\": -2}").ok());
  // Unknown top-level keys are errors, not silently ignored.
  EXPECT_FALSE(
      JobSpec::FromJson("{\"dataset_id\": \"d\", \"k\": 3, \"kk\": 1}")
          .ok());
  // Unknown algorithm.
  EXPECT_FALSE(JobSpec::FromJson("{\"dataset_id\": \"d\", \"k\": 3,"
                                 " \"algorithm\": \"Z-means\"}")
                   .ok());
  // Unknown engine knob, and a fractional value for an integer knob.
  EXPECT_FALSE(JobSpec::FromJson("{\"dataset_id\": \"d\", \"k\": 3,"
                                 " \"engine\": {\"warp_drive\": 1}}")
                   .ok());
  EXPECT_FALSE(JobSpec::FromJson("{\"dataset_id\": \"d\", \"k\": 3,"
                                 " \"engine\": {\"threads\": 1.5}}")
                   .ok());
}

TEST(JobSpec, ToJsonRoundTrips) {
  auto spec = JobSpec::FromJson(
      "{\"dataset_id\": \"ds-1\", \"k\": 5, \"seed\": 9,"
      " \"engine\": {\"threads\": 2}}");
  ASSERT_TRUE(spec.ok());
  auto reparsed = JobSpec::FromJson(spec.ValueOrDie().ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie().dataset_id, "ds-1");
  EXPECT_EQ(reparsed.ValueOrDie().k, 5);
  EXPECT_EQ(reparsed.ValueOrDie().seed, 9u);
  EXPECT_EQ(reparsed.ValueOrDie().engine.num_threads, 2);
}

// ----------------------------------------------------- DatasetRegistry --

TEST(DatasetRegistry, RegisterValidatesAndDedupes) {
  DatasetRegistry registry;
  auto first = registry.Register(TestDatasetPath());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const DatasetInfo& info = first.ValueOrDie();
  EXPECT_EQ(info.id, "ds-1");
  EXPECT_EQ(info.n, 120u);
  EXPECT_EQ(info.m, 4u);
  EXPECT_EQ(info.num_classes, 3);
  EXPECT_TRUE(info.has_labels);
  EXPECT_GT(info.file_bytes, 0u);

  // Same path again: same id, updated sidecar.
  auto again = registry.Register(TestDatasetPath(),
                                 TestDatasetPath() + ".umom");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().id, "ds-1");
  EXPECT_EQ(again.ValueOrDie().moments_path, TestDatasetPath() + ".umom");
  EXPECT_EQ(registry.size(), 1u);

  auto got = registry.Get("ds-1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie().path, TestDatasetPath());
  EXPECT_FALSE(registry.Get("ds-99").ok());
  EXPECT_EQ(registry.List().size(), 1u);
}

TEST(DatasetRegistry, RejectsBadInputs) {
  DatasetRegistry registry;
  EXPECT_FALSE(registry.Register("/nonexistent/file.ubin").ok());
  // A sidecar path must carry the .umom extension.
  EXPECT_FALSE(
      registry.Register(TestDatasetPath(), "/tmp/not_a_sidecar.bin").ok());
  EXPECT_EQ(registry.size(), 0u);
}

// ---------------------------------------------------------- JobManager --

JobSpec SpecFor(const std::string& dataset_id, std::size_t budget = 0) {
  JobSpec spec;
  spec.dataset_id = dataset_id;
  spec.k = 3;
  spec.engine.memory_budget_bytes = budget;
  return spec;
}

// A runner that blocks until released, tracking concurrency. The latch
// lets tests hold jobs "running" deterministically.
struct BlockingRunner {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};

  JobManagerConfig::Runner AsRunner() {
    return [this](const JobSpec&, const DatasetInfo&,
                  const engine::EngineConfig&) {
      const int now = ++concurrent;
      int prev = peak.load();
      while (prev < now && !peak.compare_exchange_weak(prev, now)) {
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return released; });
      }
      --concurrent;
      return common::Result<clustering::ClusteringResult>(
          clustering::ClusteringResult{});
    };
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

TEST(JobManager, OverBudgetConcurrentJobsSerialize) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  constexpr std::size_t kPool = 1u << 20;
  JobManagerConfig cfg;
  cfg.executors = 2;
  cfg.global_budget_bytes = kPool;
  // Each job wants 3/4 of the pool: two can never run together.
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  cfg.runner_override = [&](const JobSpec&, const DatasetInfo&,
                            const engine::EngineConfig& engine_cfg)
      -> common::Result<clustering::ClusteringResult> {
    // Admission wrote the granted budget into the job's engine config.
    EXPECT_EQ(engine_cfg.memory_budget_bytes, kPool * 3 / 4);
    const int now = ++concurrent;
    int prev = peak.load();
    while (prev < now && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    --concurrent;
    return clustering::ClusteringResult{};
  };
  JobManager manager(&registry, cfg);
  manager.Start();

  auto a = manager.Submit(SpecFor("ds-1", kPool * 3 / 4), "r-a");
  auto b = manager.Submit(SpecFor("ds-1", kPool * 3 / 4), "r-b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(manager.Wait(a.ValueOrDie(), 10000));
  EXPECT_TRUE(manager.Wait(b.ValueOrDie(), 10000));

  const JobMetrics metrics = manager.Metrics();
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.max_running_concurrent, 1u);  // serialized
  EXPECT_EQ(peak.load(), 1);
  EXPECT_GE(metrics.admission_waits, 1u);
  EXPECT_EQ(metrics.budget_in_use_bytes, 0u);
  manager.Stop();
}

TEST(JobManager, WithinBudgetJobsRunConcurrently) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  JobManagerConfig cfg;
  cfg.executors = 2;
  cfg.global_budget_bytes = 1u << 20;
  BlockingRunner runner;
  cfg.runner_override = runner.AsRunner();
  JobManager manager(&registry, cfg);
  manager.Start();

  // Two jobs at 1/4 pool each fit together.
  auto a = manager.Submit(SpecFor("ds-1", 1u << 18), "r-a");
  auto b = manager.Submit(SpecFor("ds-1", 1u << 18), "r-b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Wait until both are held inside the runner, then release.
  for (int i = 0; i < 500 && runner.concurrent.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(runner.concurrent.load(), 2);
  runner.Release();
  EXPECT_TRUE(manager.Wait(a.ValueOrDie(), 10000));
  EXPECT_TRUE(manager.Wait(b.ValueOrDie(), 10000));
  EXPECT_EQ(manager.Metrics().max_running_concurrent, 2u);
  manager.Stop();
}

TEST(JobManager, OverGlobalBudgetRejectedAtSubmit) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  JobManagerConfig cfg;
  cfg.global_budget_bytes = 1u << 20;
  JobManager manager(&registry, cfg);
  manager.Start();

  auto r = manager.Submit(SpecFor("ds-1", 1u << 21), "r-big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kOutOfRange);
  EXPECT_EQ(manager.Metrics().rejected, 1u);
  EXPECT_EQ(manager.Metrics().submitted, 0u);
  manager.Stop();
}

TEST(JobManager, UnbudgetedJobClaimsWholePool) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  JobManagerConfig cfg;
  cfg.executors = 1;
  cfg.global_budget_bytes = 1u << 20;
  BlockingRunner runner;
  cfg.runner_override = runner.AsRunner();
  JobManager manager(&registry, cfg);
  manager.Start();

  auto id = manager.Submit(SpecFor("ds-1", 0), "r-whole");
  ASSERT_TRUE(id.ok());
  auto snap = manager.Get(id.ValueOrDie());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.ValueOrDie().effective_budget_bytes, 1u << 20);
  runner.Release();
  EXPECT_TRUE(manager.Wait(id.ValueOrDie(), 10000));
  manager.Stop();
}

TEST(JobManager, QueueFullRejects) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  JobManagerConfig cfg;
  cfg.executors = 1;
  cfg.queue_capacity = 1;
  BlockingRunner runner;
  cfg.runner_override = runner.AsRunner();
  JobManager manager(&registry, cfg);
  manager.Start();

  // First job occupies the lane; wait until it is actually running so the
  // queue is empty again.
  auto running = manager.Submit(SpecFor("ds-1"), "r-1");
  ASSERT_TRUE(running.ok());
  for (int i = 0; i < 500 && runner.concurrent.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Second fills the queue; third must be rejected.
  ASSERT_TRUE(manager.Submit(SpecFor("ds-1"), "r-2").ok());
  auto overflow = manager.Submit(SpecFor("ds-1"), "r-3");
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), common::StatusCode::kOutOfRange);
  EXPECT_NE(overflow.status().message().find("queue full"),
            std::string::npos);
  runner.Release();
  manager.Stop();
}

TEST(JobManager, CancelSemantics) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  JobManagerConfig cfg;
  cfg.executors = 1;
  BlockingRunner runner;
  cfg.runner_override = runner.AsRunner();
  JobManager manager(&registry, cfg);
  manager.Start();

  auto running = manager.Submit(SpecFor("ds-1"), "r-run");
  auto queued = manager.Submit(SpecFor("ds-1"), "r-queued");
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  for (int i = 0; i < 500 && runner.concurrent.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Unknown id.
  EXPECT_EQ(manager.Cancel("j-99").code(), common::StatusCode::kNotFound);
  // Running: refused (the API maps this to 409).
  EXPECT_EQ(manager.Cancel(running.ValueOrDie()).code(),
            common::StatusCode::kInvalidArgument);
  // Queued: cancelled, and cancelling again is an idempotent no-op.
  EXPECT_TRUE(manager.Cancel(queued.ValueOrDie()).ok());
  EXPECT_TRUE(manager.Cancel(queued.ValueOrDie()).ok());
  auto snap = manager.Get(queued.ValueOrDie());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.ValueOrDie().state, JobState::kCancelled);
  EXPECT_EQ(manager.Metrics().cancelled, 1u);

  runner.Release();
  EXPECT_TRUE(manager.Wait(running.ValueOrDie(), 10000));
  manager.Stop();
}

TEST(JobManager, FailedJobCarriesError) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register(TestDatasetPath()).ok());

  JobManagerConfig cfg;
  cfg.runner_override = [](const JobSpec&, const DatasetInfo&,
                           const engine::EngineConfig&)
      -> common::Result<clustering::ClusteringResult> {
    return common::Status::Internal("synthetic failure");
  };
  JobManager manager(&registry, cfg);
  manager.Start();

  auto id = manager.Submit(SpecFor("ds-1"), "r-fail");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(manager.Wait(id.ValueOrDie(), 10000));
  auto snap = manager.Get(id.ValueOrDie());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.ValueOrDie().state, JobState::kFailed);
  EXPECT_NE(snap.ValueOrDie().error.find("synthetic failure"),
            std::string::npos);
  EXPECT_EQ(manager.Metrics().failed, 1u);
  manager.Stop();
}

TEST(JobManager, UnknownDatasetRejectedAtSubmit) {
  DatasetRegistry registry;
  JobManager manager(&registry, JobManagerConfig{});
  manager.Start();
  auto r = manager.Submit(SpecFor("ds-1"), "r-x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kNotFound);
  manager.Stop();
}

// ----------------------------------------------------------- golden file --

TEST(ResultJson, MatchesGoldenFile) {
  clustering::ClusteringResult r;
  r.labels = {0, 1, 2, 0, 1, 2, 0, 1};
  r.k_requested = 3;
  r.clusters_found = 3;
  r.iterations = 12;
  r.objective = 352.23825496742165;
  r.online_ms = 4.5;
  r.offline_ms = 1.25;
  r.ed_evaluations = 960;
  r.noise_objects = 0;
  r.pairwise_backend = "tiled";
  r.table_bytes_peak = 8192;
  r.pair_evaluations = 28;
  r.tile_warm_hits = 11;
  r.tile_warm_misses = 3;
  r.pairs_pruned = 7;
  r.center_distance_evals = 288;
  r.bounds_skipped = 96;
  r.index_candidates = 18;
  r.pairs_pruned_by_index = 10;
  r.index_bound_tests = 42;

  const std::string golden_path =
      std::string(UCLUST_GOLDEN_DIR) + "/clustering_result.json";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file: " << golden_path;
  std::ostringstream contents;
  contents << in.rdbuf();

  // Byte-for-byte: field order, formatting, and the fingerprint are all
  // part of the canonical serialization contract.
  EXPECT_EQ(clustering::ResultToJson(r, /*include_labels=*/true),
            contents.str());

  // And the document must stay parseable by our own parser.
  auto parsed = common::ParseJson(contents.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().Find("k_requested")->AsInt(), 3);
  EXPECT_EQ(parsed.ValueOrDie().Find("labels")->items().size(), 8u);
}

// ------------------------------------------------------------- service --

HttpRequest Req(const std::string& method, const std::string& target,
                const std::string& body = "") {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.version = "HTTP/1.1";
  req.body = body;
  return req;
}

TEST(ClusteringService, EndToEndMatchesDirectRun) {
  SetLogEnabled(false);
  ServiceConfig cfg;
  cfg.jobs.executors = 1;
  ClusteringService svc(cfg);
  svc.jobs().Start();

  // Routes that need no state.
  EXPECT_EQ(svc.Handle(Req("GET", "/healthz")).status, 200);
  EXPECT_EQ(svc.Handle(Req("GET", "/v1/algorithms")).status, 200);
  EXPECT_EQ(svc.Handle(Req("GET", "/nope")).status, 404);
  EXPECT_EQ(svc.Handle(Req("POST", "/v1/jobs", "{oops")).status, 400);
  EXPECT_EQ(svc.Handle(Req("GET", "/v1/jobs/j-404")).status, 404);

  // Register the fixture dataset.
  HttpResponse reg = svc.Handle(
      Req("POST", "/v1/datasets", "{\"path\": \"" + TestDatasetPath() + "\"}"));
  ASSERT_EQ(reg.status, 201) << reg.body;
  auto reg_json = common::ParseJson(reg.body);
  ASSERT_TRUE(reg_json.ok());
  const std::string ds_id = reg_json.ValueOrDie().Find("id")->AsString();
  EXPECT_EQ(svc.Handle(Req("GET", "/v1/datasets/" + ds_id)).status, 200);

  // Submit a CK-means job.
  HttpResponse submit = svc.Handle(Req(
      "POST", "/v1/jobs",
      "{\"dataset_id\": \"" + ds_id +
          "\", \"algorithm\": \"CK-means\", \"k\": 3, \"seed\": 11,"
          " \"max_iters\": 30}"));
  ASSERT_EQ(submit.status, 202) << submit.body;
  auto submit_json = common::ParseJson(submit.body);
  ASSERT_TRUE(submit_json.ok());
  const std::string job_id =
      submit_json.ValueOrDie().Find("job_id")->AsString();

  ASSERT_TRUE(svc.jobs().Wait(job_id, 30000));
  HttpResponse status = svc.Handle(Req("GET", "/v1/jobs/" + job_id));
  ASSERT_EQ(status.status, 200);
  auto status_json = common::ParseJson(status.body);
  ASSERT_TRUE(status_json.ok());
  ASSERT_EQ(status_json.ValueOrDie().Find("state")->AsString(), "done")
      << status.body;

  HttpResponse result = svc.Handle(Req("GET", "/v1/jobs/" + job_id +
                                       "/result"));
  ASSERT_EQ(result.status, 200) << result.body;
  auto result_json = common::ParseJson(result.body);
  ASSERT_TRUE(result_json.ok());
  const common::JsonValue* res = result_json.ValueOrDie().Find("result");
  ASSERT_NE(res, nullptr);
  const std::string service_fp = res->Find("fingerprint")->AsString();

  // The same job run directly in-process must be bit-identical.
  clustering::CkMeans::Params params;
  params.max_iters = 30;
  auto direct = clustering::CkMeans::ClusterFile(TestDatasetPath(), 3, 11,
                                                 params);
  ASSERT_TRUE(direct.ok());
  const std::string direct_fp =
      clustering::FingerprintHex(clustering::ResultFingerprint(
          direct.ValueOrDie().labels, direct.ValueOrDie().objective));
  EXPECT_EQ(service_fp, direct_fp);

  // Metrics reflect the run.
  HttpResponse metrics = svc.Handle(Req("GET", "/v1/metrics"));
  ASSERT_EQ(metrics.status, 200);
  auto metrics_json = common::ParseJson(metrics.body);
  ASSERT_TRUE(metrics_json.ok());
  EXPECT_GE(metrics_json.ValueOrDie().Find("completed")->AsInt(), 1);

  svc.Stop();
  SetLogEnabled(true);
}

TEST(ClusteringService, ResultBeforeDoneAndCancelConflicts) {
  SetLogEnabled(false);
  ServiceConfig cfg;
  cfg.jobs.executors = 1;
  BlockingRunner runner;
  cfg.jobs.runner_override = runner.AsRunner();
  ClusteringService svc(cfg);
  svc.jobs().Start();

  HttpResponse reg = svc.Handle(
      Req("POST", "/v1/datasets", "{\"path\": \"" + TestDatasetPath() + "\"}"));
  ASSERT_EQ(reg.status, 201);
  const std::string ds_id =
      common::ParseJson(reg.body).ValueOrDie().Find("id")->AsString();

  HttpResponse submit = svc.Handle(
      Req("POST", "/v1/jobs",
          "{\"dataset_id\": \"" + ds_id + "\", \"k\": 3}"));
  ASSERT_EQ(submit.status, 202);
  const std::string job_id =
      common::ParseJson(submit.body).ValueOrDie().Find("job_id")->AsString();
  for (int i = 0; i < 500 && runner.concurrent.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The job is held "running": result is 409, as is cancelling it.
  EXPECT_EQ(svc.Handle(Req("GET", "/v1/jobs/" + job_id + "/result")).status,
            409);
  EXPECT_EQ(svc.Handle(Req("DELETE", "/v1/jobs/" + job_id)).status, 409);

  runner.Release();
  ASSERT_TRUE(svc.jobs().Wait(job_id, 10000));
  EXPECT_EQ(svc.Handle(Req("GET", "/v1/jobs/" + job_id + "/result")).status,
            200);
  // Cancelling a terminal job is an idempotent success.
  EXPECT_EQ(svc.Handle(Req("DELETE", "/v1/jobs/" + job_id)).status, 200);

  svc.Stop();
  SetLogEnabled(true);
}

}  // namespace
}  // namespace uclust::service
