// Dispatch parity of the SIMD kernel layer: every compiled-and-supported
// ISA path (scalar reference, AVX2, NEON) must produce BIT-IDENTICAL
// doubles for every primitive, on every input shape — full lane groups,
// remainder lanes, all-tail rows shorter than one lane block — and the
// parity must survive all the way up through the tile producers, the
// chunked MomentView plumbing, and the CK-means reduced-moment sweep.
// This is the contract (simd.h) that makes --simd_isa a pure throughput
// knob: forcing a path can change speed, never values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "clustering/ckmeans.h"
#include "clustering/kernels.h"
#include "clustering/simd/simd.h"
#include "clustering/ukmeans.h"
#include "common/rng.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "uncertain/moments.h"

namespace uclust::clustering::simd {
namespace {

// Every dimensionality class the lane-blocked order distinguishes:
// all-tail (m < 16), exact groups (16, 32, 64), and group + remainder.
constexpr std::size_t kDims[] = {1,  2,  3,  4,  5,  6,  7,  8, 9,
                                 15, 16, 17, 31, 32, 33, 64, 100};

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    if (TableFor(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

// Restores auto dispatch no matter how a ForceIsa-using test exits.
struct IsaGuard {
  ~IsaGuard() { ForceIsa(Isa::kAuto); }
};

std::vector<double> RandomVector(std::size_t n, common::Rng* rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Uniform(-3.0, 3.0);
  return v;
}

// Bitwise comparison: parity means identical bits, not just ==, so that
// signed zeros and every last ulp are pinned.
::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ in bits";
}

TEST(SimdKernels, ScalarTableAlwaysAvailable) {
  ASSERT_NE(TableFor(Isa::kScalar), nullptr);
  ASSERT_NE(TableFor(Isa::kAuto), nullptr);
  const Isa best = DetectBestIsa();
  EXPECT_NE(TableFor(best), nullptr);
  EXPECT_EQ(TableFor(Isa::kAuto), TableFor(best));
}

TEST(SimdKernels, IsaNamesRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon, Isa::kAuto}) {
    Isa parsed = Isa::kAuto;
    ASSERT_TRUE(IsaFromString(IsaName(isa), &parsed)) << IsaName(isa);
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed = Isa::kScalar;
  EXPECT_FALSE(IsaFromString("sse9", &parsed));
  EXPECT_EQ(parsed, Isa::kScalar);  // untouched on failure
}

TEST(SimdKernels, ReductionPrimitivesBitIdenticalAcrossIsas) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  common::Rng rng(0x51D0);
  for (const std::size_t m : kDims) {
    const std::vector<double> a = RandomVector(m, &rng);
    const std::vector<double> b = RandomVector(m, &rng);
    const double want_d2 = ref->squared_distance(a.data(), b.data(), m);
    const double want_sum = ref->sum(a.data(), m);
    const double want_ed2 = ref->ed2(a.data(), b.data(), m, 0.25, 1.75);
    for (Isa isa : AvailableIsas()) {
      const KernelTable* t = TableFor(isa);
      EXPECT_TRUE(
          BitsEqual(want_d2, t->squared_distance(a.data(), b.data(), m)))
          << "squared_distance m=" << m << " isa=" << IsaName(isa);
      EXPECT_TRUE(BitsEqual(want_sum, t->sum(a.data(), m)))
          << "sum m=" << m << " isa=" << IsaName(isa);
      EXPECT_TRUE(BitsEqual(want_ed2, t->ed2(a.data(), b.data(), m, 0.25,
                                             1.75)))
          << "ed2 m=" << m << " isa=" << IsaName(isa);
    }
  }
}

TEST(SimdKernels, VectorAddAndPackRowBitIdenticalAcrossIsas) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  common::Rng rng(0x51D1);
  for (const std::size_t m : kDims) {
    const std::vector<double> base = RandomVector(m, &rng);
    const std::vector<double> src = RandomVector(m, &rng);
    const std::vector<double> mu2 = RandomVector(m, &rng);
    std::vector<double> var = RandomVector(m, &rng);
    for (double& v : var) v = std::abs(v);

    std::vector<double> want_add = base;
    ref->vector_add(want_add.data(), src.data(), m);
    std::vector<double> want_mean(m), want_mu2(m), want_var(m);
    double want_tv = 0.0;
    ref->pack_row(base.data(), mu2.data(), var.data(), m, want_mean.data(),
                  want_mu2.data(), want_var.data(), &want_tv);

    for (Isa isa : AvailableIsas()) {
      const KernelTable* t = TableFor(isa);
      std::vector<double> add = base;
      t->vector_add(add.data(), src.data(), m);
      EXPECT_EQ(0, std::memcmp(add.data(), want_add.data(),
                               m * sizeof(double)))
          << "vector_add m=" << m << " isa=" << IsaName(isa);

      std::vector<double> pm(m), p2(m), pv(m);
      double tv = 0.0;
      t->pack_row(base.data(), mu2.data(), var.data(), m, pm.data(), p2.data(),
                  pv.data(), &tv);
      EXPECT_EQ(0, std::memcmp(pm.data(), want_mean.data(),
                               m * sizeof(double)));
      EXPECT_EQ(0, std::memcmp(p2.data(), want_mu2.data(),
                               m * sizeof(double)));
      EXPECT_EQ(0, std::memcmp(pv.data(), want_var.data(),
                               m * sizeof(double)));
      EXPECT_TRUE(BitsEqual(want_tv, tv))
          << "pack_row total_var m=" << m << " isa=" << IsaName(isa);
    }
  }
}

TEST(SimdKernels, NearestTwoBitIdenticalAcrossIsas) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  common::Rng rng(0x51D2);
  for (const std::size_t m : {std::size_t{3}, std::size_t{16},
                              std::size_t{33}}) {
    for (const int k : {1, 2, 7}) {
      const std::vector<double> point = RandomVector(m, &rng);
      const std::vector<double> centroids = RandomVector(k * m, &rng);
      for (const int reuse_c : {-1, 0, k - 1}) {
        const double reuse_d2 = rng.Uniform(0.0, 4.0);
        int want_best = -2;
        double want_bd = 0.0, want_sd = 0.0;
        ref->nearest_two(point.data(), centroids.data(), k, m, reuse_c,
                         reuse_d2, &want_best, &want_bd, &want_sd);
        for (Isa isa : AvailableIsas()) {
          int best = -2;
          double bd = 0.0, sd = 0.0;
          TableFor(isa)->nearest_two(point.data(), centroids.data(), k, m,
                                     reuse_c, reuse_d2, &best, &bd, &sd);
          EXPECT_EQ(want_best, best) << "isa=" << IsaName(isa);
          EXPECT_TRUE(BitsEqual(want_bd, bd)) << "isa=" << IsaName(isa);
          EXPECT_TRUE(BitsEqual(want_sd, sd)) << "isa=" << IsaName(isa);
        }
      }
    }
  }
}

TEST(SimdKernels, NearestTwoMatchesHistoricalScanSemantics) {
  // k == 1: no runner-up exists, second_d2 is +inf (the value the Hamerly
  // lower bound consumes as "prune nothing").
  const std::vector<double> point = {1.0, 2.0};
  const std::vector<double> one = {0.0, 0.0};
  int best = -1;
  double bd = 0.0, sd = 0.0;
  NearestTwo(point.data(), one.data(), 1, 2, -1, 0.0, &best, &bd, &sd);
  EXPECT_EQ(best, 0);
  EXPECT_EQ(bd, 5.0);
  EXPECT_EQ(sd, std::numeric_limits<double>::infinity());

  // All three centers are at distance 2: the tie breaks toward the lowest
  // center index.
  const std::vector<double> tied = {0.0, 3.0, 2.0, 1.0, 2.0, 1.0};
  NearestTwo(point.data(), tied.data(), 3, 2, -1, 0.0, &best, &bd, &sd);
  EXPECT_EQ(best, 0);
  EXPECT_EQ(bd, 2.0);
  EXPECT_EQ(sd, 2.0);

  // reuse_c substitutes the cached distance without reordering decisions.
  NearestTwo(point.data(), tied.data(), 3, 2, 2, 0.5, &best, &bd, &sd);
  EXPECT_EQ(best, 2);
  EXPECT_EQ(bd, 0.5);
  EXPECT_EQ(sd, 2.0);
}

data::UncertainDataset SmallDataset(std::size_t n, std::size_t m, int classes,
                                    uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = m;
  params.classes = classes;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(params, seed, "simd");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

// Pairwise tile producers under each forced ISA: the ED^ tiles a
// PairwiseStore backend materializes must not depend on the dispatch path.
TEST(SimdKernels, PairwiseTilesBitIdenticalUnderForcedIsas) {
  IsaGuard guard;
  const auto ds = SmallDataset(60, 17, 3, 77);  // 17 = one group + tail
  const auto kernel = kernels::PairwiseKernel::ClosedFormED2(ds.objects());
  const std::size_t n = ds.size();
  engine::EngineConfig config;
  config.num_threads = 2;
  config.block_size = 16;
  const engine::Engine eng(config);

  ASSERT_TRUE(ForceIsa(Isa::kScalar));
  std::vector<double> want_row(8 * n), want_gather(3 * n), want_block(5 * 5);
  kernels::FillRowTile(eng, kernel, 20, 28, want_row.data());
  const std::vector<std::size_t> rows = {3, 41, 59};
  kernels::FillGatherTile(eng, kernel, rows, want_gather.data());
  const std::vector<std::size_t> ids = {2, 11, 23, 37, 53};
  const std::vector<std::size_t> missing = {0, 1, 2, 3, 4};
  kernels::FillSymmetricBlock(eng, kernel, ids, missing, want_block.data());

  for (Isa isa : AvailableIsas()) {
    ASSERT_TRUE(ForceIsa(isa));
    std::vector<double> row(8 * n, -1.0), gather(3 * n, -1.0);
    std::vector<double> block(5 * 5, -1.0);
    kernels::FillRowTile(eng, kernel, 20, 28, row.data());
    kernels::FillGatherTile(eng, kernel, rows, gather.data());
    kernels::FillSymmetricBlock(eng, kernel, ids, missing, block.data());
    EXPECT_EQ(0, std::memcmp(row.data(), want_row.data(),
                             row.size() * sizeof(double)))
        << "row tile isa=" << IsaName(isa);
    EXPECT_EQ(0, std::memcmp(gather.data(), want_gather.data(),
                             gather.size() * sizeof(double)))
        << "gather tile isa=" << IsaName(isa);
    EXPECT_EQ(0, std::memcmp(block.data(), want_block.data(),
                             block.size() * sizeof(double)))
        << "symmetric block isa=" << IsaName(isa);
  }
}

// Serves a MomentMatrix's rows through the chunked MomentView interface —
// the same plumbing the mmap-backed .umom store uses, minus the I/O.
class FakeChunkSource : public uncertain::MomentChunkSource {
 public:
  FakeChunkSource(const uncertain::MomentMatrix& mm, std::size_t chunk_rows)
      : mm_(mm), chunk_rows_(chunk_rows) {
    const std::size_t chunks = (mm.size() + chunk_rows - 1) / chunk_rows;
    tv_chunks_.resize(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t r = c * chunk_rows;
           r < std::min(mm.size(), (c + 1) * chunk_rows); ++r) {
        tv_chunks_[c].push_back(mm.total_variance(r));
      }
    }
  }

  uncertain::MomentChunkPtrs ChunkData(std::size_t chunk) const override {
    const std::size_t row = chunk * chunk_rows_;
    uncertain::MomentChunkPtrs ptrs;
    ptrs.mean = mm_.mean(row).data();
    ptrs.mu2 = mm_.second_moment(row).data();
    ptrs.var = mm_.variance(row).data();
    ptrs.total_var = tv_chunks_[chunk].data();
    return ptrs;
  }

 private:
  const uncertain::MomentMatrix& mm_;
  std::size_t chunk_rows_;
  std::vector<std::vector<double>> tv_chunks_;
};

// The moment kernels consume chunked views byte-for-byte like flat ones,
// under every forced ISA: dispatch path x storage shape is a 2D grid of
// identical results.
TEST(SimdKernels, ChunkedMomentViewBitIdenticalUnderForcedIsas) {
  IsaGuard guard;
  const auto ds = SmallDataset(96, 33, 4, 91);  // 33 = two groups + tail
  const uncertain::MomentMatrix& mm = ds.moments();
  const FakeChunkSource source(mm, 8);
  const uncertain::MomentView chunked(mm.size(), mm.dims(), 8, &source);
  engine::EngineConfig config;
  config.num_threads = 2;
  config.block_size = 16;
  const engine::Engine eng(config);

  ASSERT_TRUE(ForceIsa(Isa::kScalar));
  std::vector<double> centroids(4 * mm.dims());
  for (std::size_t j = 0; j < centroids.size(); ++j) {
    centroids[j] = mm.mean(j % mm.size())[j % mm.dims()];
  }
  std::vector<int> want_labels(mm.size(), -1);
  kernels::AssignNearest(eng, mm.view(), centroids, 4, want_labels);
  std::vector<double> want_sums;
  std::vector<std::size_t> want_counts;
  kernels::SumMeansByLabel(eng, mm.view(), want_labels, 4, &want_sums,
                           &want_counts);
  const double want_obj =
      kernels::AssignmentObjective(eng, mm.view(), want_labels, centroids);

  for (Isa isa : AvailableIsas()) {
    ASSERT_TRUE(ForceIsa(isa));
    for (const bool use_chunked : {false, true}) {
      const uncertain::MomentView view = use_chunked ? chunked : mm.view();
      std::vector<int> labels(mm.size(), -1);
      kernels::AssignNearest(eng, view, centroids, 4, labels);
      EXPECT_EQ(labels, want_labels)
          << "isa=" << IsaName(isa) << " chunked=" << use_chunked;
      std::vector<double> sums;
      std::vector<std::size_t> counts;
      kernels::SumMeansByLabel(eng, view, labels, 4, &sums, &counts);
      EXPECT_EQ(counts, want_counts) << "isa=" << IsaName(isa);
      ASSERT_EQ(sums.size(), want_sums.size());
      EXPECT_EQ(0, std::memcmp(sums.data(), want_sums.data(),
                               sums.size() * sizeof(double)))
          << "sums isa=" << IsaName(isa) << " chunked=" << use_chunked;
      const double obj =
          kernels::AssignmentObjective(eng, view, labels, centroids);
      EXPECT_TRUE(BitsEqual(want_obj, obj))
          << "objective isa=" << IsaName(isa) << " chunked=" << use_chunked;
    }
  }
}

// The CK-means reduced-moment sweep (and its bound-pruned variant) routes
// its center scans through the dispatched nearest_two: forcing any ISA must
// reproduce the forced-scalar clustering bit-for-bit, including the pruning
// counters (the pruning decisions are a pure function of the distances).
TEST(SimdKernels, CkmeansReducedSweepBitIdenticalUnderForcedIsas) {
  IsaGuard guard;
  const auto ds = SmallDataset(300, 9, 4, 57);
  engine::EngineConfig config;
  config.num_threads = 2;
  config.block_size = 64;
  const engine::Engine eng(config);

  for (const bool bounds : {false, true}) {
    CkMeans::Params p;
    p.reduction = true;
    p.bound_pruning = bounds;
    ASSERT_TRUE(ForceIsa(Isa::kScalar));
    const auto want = CkMeans::RunOnMoments(ds.moments(), 4, 7, p, eng);
    for (Isa isa : AvailableIsas()) {
      ASSERT_TRUE(ForceIsa(isa));
      const auto out = CkMeans::RunOnMoments(ds.moments(), 4, 7, p, eng);
      EXPECT_EQ(out.labels, want.labels)
          << "bounds=" << bounds << " isa=" << IsaName(isa);
      EXPECT_TRUE(BitsEqual(want.objective, out.objective))
          << "bounds=" << bounds << " isa=" << IsaName(isa);
      EXPECT_EQ(out.iterations, want.iterations) << IsaName(isa);
      EXPECT_EQ(out.center_distance_evals, want.center_distance_evals)
          << "bounds=" << bounds << " isa=" << IsaName(isa);
      EXPECT_EQ(out.bounds_skipped, want.bounds_skipped)
          << "bounds=" << bounds << " isa=" << IsaName(isa);
    }
  }
}

// EngineConfig::simd_isa is the user-facing spelling of ForceIsa: "scalar"
// pins the reference path, unknown names fall back to auto, and the engine
// reports the path actually active.
TEST(SimdKernels, EngineConfigAppliesSimdIsa) {
  IsaGuard guard;
  engine::EngineConfig config;
  config.simd_isa = "scalar";
  const engine::Engine eng(config);
  EXPECT_EQ(eng.simd_isa(), "scalar");
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);

  engine::EngineConfig bad;
  bad.simd_isa = "sse9";
  const engine::Engine eng2(bad);
  EXPECT_EQ(ActiveIsa(), DetectBestIsa());
  EXPECT_EQ(eng2.simd_isa(), IsaName(DetectBestIsa()));
}

}  // namespace
}  // namespace uclust::clustering::simd
