// SpatialIndex exactness contract: for every structure (R-tree, grid) and a
// mix of pdf families / dimensionalities, QueryWithin must return EXACTLY
// the brute-force set { j : boxes[j].MinSquaredDistanceTo(query) <=
// threshold2 }, KthMaxSquaredDistance the exact rank statistic of the max
// bound, NearestCandidates a superset of the min-bound argmin bracket, and
// QueryNearest the exact (distance, id)-ordered prefix. These are the
// invariants the indexed FDBSCAN / FOPTICS / UK-medoids sweeps rely on for
// bit-identical clusterings (docs/spatial-index.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "clustering/spatial_index.h"
#include "common/rng.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/uniform_pdf.h"
#include "data/uncertainty_model.h"
#include "uncertain/uncertain_object.h"

namespace uclust::clustering {
namespace {

using uncertain::Box;
using uncertain::UncertainObject;

constexpr SpatialIndexKind kKinds[] = {SpatialIndexKind::kRTree,
                                       SpatialIndexKind::kGrid};

const char* KindName(SpatialIndexKind kind) {
  return kind == SpatialIndexKind::kRTree ? "rtree" : "grid";
}

// Objects with per-dimension pdfs cycling through every supported family —
// including zero-extent Dirac regions — so degenerate and fat boxes mix.
std::vector<UncertainObject> MixedFamilyObjects(std::size_t n, std::size_t m,
                                                uint64_t seed) {
  common::Rng rng(seed);
  std::vector<UncertainObject> objects;
  objects.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<uncertain::PdfPtr> dims;
    dims.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      const double c = rng.Uniform(-2.0, 2.0);
      const double w = 0.02 + 0.3 * rng.Uniform();
      switch ((i * m + j) % 5) {
        case 0:
          dims.push_back(uncertain::UniformPdf::Centered(c, w));
          break;
        case 1:
          dims.push_back(
              data::MakeUncertainPdf(data::PdfFamily::kNormal, c, w));
          break;
        case 2:
          dims.push_back(
              data::MakeUncertainPdf(data::PdfFamily::kExponential, c, w));
          break;
        case 3:
          dims.push_back(
              uncertain::DiscretePdf::Uniformly({c - w, c, c + 0.5 * w}));
          break;
        default:
          dims.push_back(uncertain::DiracPdf::Make(c));
          break;
      }
    }
    objects.emplace_back(std::move(dims));
  }
  return objects;
}

std::vector<std::size_t> BruteWithin(
    const std::vector<UncertainObject>& objects, const Box& query,
    double threshold2, std::size_t exclude) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < objects.size(); ++j) {
    if (j == exclude) continue;
    if (objects[j].region().MinSquaredDistanceTo(query) <= threshold2) {
      out.push_back(j);
    }
  }
  return out;
}

// QueryWithin over random queries and thresholds must equal the brute-force
// set element-for-element on both structures, across dimensionalities.
TEST(SpatialIndex, QueryWithinMatchesBruteForceAcrossFamilies) {
  for (const std::size_t m : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    const auto objects = MixedFamilyObjects(120, m, 0xB0C5 + m);
    common::Rng rng(0xF00D + m);
    for (const SpatialIndexKind kind : kKinds) {
      const SpatialIndex index(
          std::span<const UncertainObject>(objects.data(), objects.size()),
          kind);
      ASSERT_EQ(index.size(), objects.size());
      for (int probe = 0; probe < 64; ++probe) {
        const std::size_t i = rng.Index(objects.size());
        // Thresholds from tiny (often-empty result) to huge (everything).
        const double t2 = std::pow(10.0, rng.Uniform(-4.0, 1.0));
        const std::size_t exclude =
            probe % 2 == 0 ? i : objects.size();  // with and without self
        std::vector<std::size_t> got;
        index.QueryWithin(objects[i].region(), t2, exclude, &got);
        EXPECT_EQ(got,
                  BruteWithin(objects, objects[i].region(), t2, exclude))
            << KindName(kind) << " m=" << m << " probe=" << probe;
      }
    }
  }
}

// The k-th smallest max-distance bound, the FOPTICS range radius.
TEST(SpatialIndex, KthMaxSquaredDistanceMatchesBruteForce) {
  const auto objects = MixedFamilyObjects(80, 3, 0xCAFE);
  common::Rng rng(0xBEEF);
  for (const SpatialIndexKind kind : kKinds) {
    const SpatialIndex index(
        std::span<const UncertainObject>(objects.data(), objects.size()),
        kind);
    for (int probe = 0; probe < 48; ++probe) {
      const std::size_t i = rng.Index(objects.size());
      const std::size_t rank = 1 + rng.Index(objects.size() - 1);
      std::vector<double> maxes;
      for (std::size_t j = 0; j < objects.size(); ++j) {
        if (j == i) continue;
        maxes.push_back(
            objects[j].region().MaxSquaredDistanceTo(objects[i].region()));
      }
      std::nth_element(maxes.begin(), maxes.begin() + (rank - 1),
                       maxes.end());
      EXPECT_EQ(index.KthMaxSquaredDistance(objects[i].region(), rank, i),
                maxes[rank - 1])
          << KindName(kind) << " probe=" << probe << " rank=" << rank;
    }
    // More ranks than boxes: no radius captures that many.
    EXPECT_EQ(index.KthMaxSquaredDistance(objects[0].region(),
                                          objects.size() + 5, 0),
              std::numeric_limits<double>::infinity());
  }
}

// NearestCandidates must bracket the argmin: every id whose min bound does
// not exceed the smallest max bound is included, and the set is never empty.
TEST(SpatialIndex, NearestCandidatesBracketTheArgmin) {
  const auto objects = MixedFamilyObjects(60, 2, 0xD00D);
  // Index a strided subset (the medoid use case: few boxes, many queries).
  std::vector<Box> boxes;
  for (std::size_t j = 0; j < objects.size(); j += 7) {
    boxes.push_back(objects[j].region());
  }
  for (const SpatialIndexKind kind : kKinds) {
    const SpatialIndex index(std::vector<Box>(boxes), kind);
    std::vector<std::size_t> cand;
    for (const auto& o : objects) {
      index.NearestCandidates(o.region(), &cand);
      ASSERT_FALSE(cand.empty());
      ASSERT_TRUE(std::is_sorted(cand.begin(), cand.end()));
      double best_ub = std::numeric_limits<double>::infinity();
      for (const Box& b : boxes) {
        best_ub = std::min(best_ub, b.MaxSquaredDistanceTo(o.region()));
      }
      for (std::size_t s = 0; s < boxes.size(); ++s) {
        const bool possible =
            boxes[s].MinSquaredDistanceTo(o.region()) <= best_ub;
        const bool listed =
            std::binary_search(cand.begin(), cand.end(), s);
        // The candidate set may over-include (slack), never under-include.
        EXPECT_TRUE(!possible || listed) << KindName(kind) << " slot=" << s;
      }
    }
  }
}

// QueryNearest: exact (distance, id) order against a brute-force sort.
TEST(SpatialIndex, QueryNearestMatchesBruteForceOrder) {
  const auto objects = MixedFamilyObjects(70, 3, 0xACE5);
  common::Rng rng(0x5EED);
  for (const SpatialIndexKind kind : kKinds) {
    const SpatialIndex index(
        std::span<const UncertainObject>(objects.data(), objects.size()),
        kind);
    for (int probe = 0; probe < 24; ++probe) {
      std::vector<double> point = {rng.Uniform(-2.5, 2.5),
                                   rng.Uniform(-2.5, 2.5),
                                   rng.Uniform(-2.5, 2.5)};
      const std::size_t k = 1 + rng.Index(objects.size() + 4);
      std::vector<std::pair<double, std::size_t>> ranked;
      for (std::size_t j = 0; j < objects.size(); ++j) {
        ranked.emplace_back(objects[j].region().MinSquaredDistanceTo(
                                std::span<const double>(point)),
                            j);
      }
      std::sort(ranked.begin(), ranked.end());
      std::vector<std::size_t> want;
      for (std::size_t r = 0; r < std::min(k, ranked.size()); ++r) {
        want.push_back(ranked[r].second);
      }
      std::vector<std::size_t> got;
      index.QueryNearest(std::span<const double>(point), k, &got);
      EXPECT_EQ(got, want) << KindName(kind) << " probe=" << probe
                           << " k=" << k;
    }
  }
}

// Degenerate shapes: a single object, and all boxes stacked on one spot
// (every pair at distance 0 — the grid collapses to one cell, the R-tree to
// one leaf; queries must still return complete sets).
TEST(SpatialIndex, SingleObjectAndAllOverlappingBoxes) {
  const std::vector<double> spot = {0.5, -1.0};
  for (const SpatialIndexKind kind : kKinds) {
    // Single object.
    std::vector<UncertainObject> one;
    one.push_back(UncertainObject::Deterministic(spot));
    const SpatialIndex single(
        std::span<const UncertainObject>(one.data(), one.size()), kind);
    std::vector<std::size_t> out;
    single.QueryWithin(one[0].region(), 1.0, 0, &out);
    EXPECT_TRUE(out.empty()) << KindName(kind);  // only the excluded self
    single.QueryWithin(one[0].region(), 0.0, one.size(), &out);
    EXPECT_EQ(out, std::vector<std::size_t>{0}) << KindName(kind);
    EXPECT_EQ(single.KthMaxSquaredDistance(one[0].region(), 1, 0),
              std::numeric_limits<double>::infinity());

    // Identical boxes: zero-width and fat variants sharing one center.
    std::vector<UncertainObject> stack;
    for (int i = 0; i < 17; ++i) {
      if (i % 2 == 0) {
        stack.push_back(UncertainObject::Deterministic(spot));
      } else {
        std::vector<uncertain::PdfPtr> dims;
        dims.push_back(uncertain::UniformPdf::Centered(spot[0], 0.25));
        dims.push_back(uncertain::UniformPdf::Centered(spot[1], 0.25));
        stack.emplace_back(std::move(dims));
      }
    }
    const SpatialIndex overlap(
        std::span<const UncertainObject>(stack.data(), stack.size()), kind);
    overlap.QueryWithin(stack[0].region(), 0.0, 3, &out);
    EXPECT_EQ(out.size(), stack.size() - 1) << KindName(kind);
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(overlap.KthMaxSquaredDistance(stack[0].region(),
                                            stack.size() - 1, 0),
              stack[1].region().MaxSquaredDistanceTo(stack[0].region()));
    overlap.NearestCandidates(stack[0].region(), &out);
    EXPECT_EQ(out.size(), stack.size()) << KindName(kind);
  }
}

// An empty box list builds and answers every query with the empty set.
TEST(SpatialIndex, EmptyIndexAnswersEmptily) {
  for (const SpatialIndexKind kind : kKinds) {
    const SpatialIndex empty(std::vector<Box>{}, kind);
    EXPECT_EQ(empty.size(), std::size_t{0});
    const Box q({0.0}, {1.0});
    std::vector<std::size_t> out = {99};
    empty.QueryWithin(q, 1e9, 0, &out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(empty.KthMaxSquaredDistance(q, 1, 0),
              std::numeric_limits<double>::infinity());
    const std::vector<double> p = {0.5};
    empty.QueryNearest(std::span<const double>(p), 3, &out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(empty.bound_tests(), 0);
  }
}

TEST(SpatialIndex, ChoiceParsingAndResolution) {
  SpatialIndexChoice c = SpatialIndexChoice::kOff;
  EXPECT_TRUE(SpatialIndexChoiceFromString("auto", &c));
  EXPECT_EQ(c, SpatialIndexChoice::kAuto);
  EXPECT_TRUE(SpatialIndexChoiceFromString("rtree", &c));
  EXPECT_EQ(c, SpatialIndexChoice::kRTree);
  EXPECT_TRUE(SpatialIndexChoiceFromString("grid", &c));
  EXPECT_EQ(c, SpatialIndexChoice::kGrid);
  EXPECT_TRUE(SpatialIndexChoiceFromString("off", &c));
  EXPECT_EQ(c, SpatialIndexChoice::kOff);
  c = SpatialIndexChoice::kGrid;
  EXPECT_FALSE(SpatialIndexChoiceFromString("octree", &c));
  EXPECT_EQ(c, SpatialIndexChoice::kGrid);  // untouched on failure

  EXPECT_STREQ(SpatialIndexChoiceName(SpatialIndexChoice::kAuto), "auto");
  EXPECT_STREQ(SpatialIndexChoiceName(SpatialIndexChoice::kOff), "off");

  // Auto: grid while cell windows stay compact, R-tree beyond.
  EXPECT_EQ(ResolveSpatialIndexKind(SpatialIndexChoice::kAuto, 2),
            SpatialIndexKind::kGrid);
  EXPECT_EQ(ResolveSpatialIndexKind(SpatialIndexChoice::kAuto, 3),
            SpatialIndexKind::kGrid);
  EXPECT_EQ(ResolveSpatialIndexKind(SpatialIndexChoice::kAuto, 4),
            SpatialIndexKind::kRTree);
  EXPECT_EQ(ResolveSpatialIndexKind(SpatialIndexChoice::kRTree, 2),
            SpatialIndexKind::kRTree);
  EXPECT_EQ(ResolveSpatialIndexKind(SpatialIndexChoice::kGrid, 9),
            SpatialIndexKind::kGrid);
}

// The bound-test counter grows with queries and is what the CI smoke gate
// compares against the all-pairs floor.
TEST(SpatialIndex, BoundTestCounterIsMonotone) {
  const auto objects = MixedFamilyObjects(40, 2, 0x1234);
  for (const SpatialIndexKind kind : kKinds) {
    const SpatialIndex index(
        std::span<const UncertainObject>(objects.data(), objects.size()),
        kind);
    EXPECT_EQ(index.bound_tests(), 0);
    std::vector<std::size_t> out;
    index.QueryWithin(objects[0].region(), 0.5, 0, &out);
    const int64_t after_one = index.bound_tests();
    EXPECT_GT(after_one, 0) << KindName(kind);
    index.QueryWithin(objects[1].region(), 0.5, 1, &out);
    EXPECT_GT(index.bound_tests(), after_one) << KindName(kind);
  }
}

}  // namespace
}  // namespace uclust::clustering
