// Numeric verification of the paper's formal results, cross-checked against
// Monte-Carlo simulation rather than against our own closed forms:
//   Proposition 1 — J_UK can coincide while cluster variances differ.
//   Proposition 2 — J_MM(C) = J_UK(C)/|C| (mixture variance via MC).
//   Proposition 3 — J^(C) = 2 J_UK(C)    (mixture distance via MC).
//   Theorem 1     — U-centroid realizations live in the averaged region.
//   Theorem 2     — sigma^2(U-centroid) = |C|^-2 sum_i sigma^2(o_i).
//   Theorem 3     — J(C) closed form = sum_o ED^(o, U-centroid) (MC).
#include <gtest/gtest.h>

#include <cmath>

#include "clustering/cluster_stats.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "data/uncertainty_model.h"
#include "uncertain/moments.h"
#include "uncertain/uncertain_object.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::clustering {
namespace {

using data::MakeUncertainPdf;
using data::PdfFamily;
using uncertain::MomentMatrix;
using uncertain::PdfPtr;
using uncertain::UncertainObject;

std::vector<UncertainObject> RandomCluster(std::size_t n, std::size_t m,
                                           uint64_t seed) {
  common::Rng rng(seed);
  std::vector<UncertainObject> objs;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<PdfPtr> dims;
    for (std::size_t j = 0; j < m; ++j) {
      const auto family = static_cast<PdfFamily>(rng.UniformInt(0, 2));
      dims.push_back(MakeUncertainPdf(family, rng.Uniform(-2.0, 2.0),
                                      rng.Uniform(0.1, 0.7)));
    }
    objs.emplace_back(std::move(dims));
  }
  return objs;
}

ClusterMoments Aggregate(const MomentMatrix& mm) {
  ClusterMoments c(mm.dims());
  for (std::size_t i = 0; i < mm.size(); ++i) c.Add(mm, i);
  return c;
}

// One realization of the U-centroid: the average of one fresh realization of
// every member (Theorem 1's construction with the squared Euclidean norm).
std::vector<double> SampleUCentroid(const std::vector<UncertainObject>& objs,
                                    common::Rng* rng) {
  const std::size_t m = objs[0].dims();
  std::vector<double> acc(m, 0.0);
  std::vector<double> x(m);
  for (const auto& o : objs) {
    o.SampleInto(rng, x);
    for (std::size_t j = 0; j < m; ++j) acc[j] += x[j];
  }
  for (double& v : acc) v /= static_cast<double>(objs.size());
  return acc;
}

TEST(Proposition1, EqualJukDoesNotForceEqualVariance) {
  // Two-object clusters engineered per the proof sketch: same size, same
  // sum of mu2, same sum of mu (per dimension) -> same J_UK by Lemma 1;
  // but the mass is split differently between mean offsets and variances.
  std::vector<PdfPtr> p1, p2, q1, q2;
  p1.push_back(uncertain::UniformPdf::Centered(0.0, 0.9));  // var 0.27
  p2.push_back(uncertain::UniformPdf::Centered(2.0, 0.3));  // var 0.03
  // Cluster C': swap mass between mean offset and variance keeping
  // mu and mu2 sums fixed: mu2 = var + mu^2.
  // Pick means 0.5 and 1.5 => sum mu = 2 (same); sum mu^2 = 2.5 (was 4).
  // Need sum mu2 equal: var' sum = var_sum + (4 - 2.5) = 0.3 + 1.5 = 1.8.
  q1.push_back(uncertain::UniformPdf::Centered(0.5, std::sqrt(3.0 * 0.9)));
  q2.push_back(uncertain::UniformPdf::Centered(1.5, std::sqrt(3.0 * 0.9)));
  std::vector<UncertainObject> cc, cd;
  cc.emplace_back(std::move(p1));
  cc.emplace_back(std::move(p2));
  cd.emplace_back(std::move(q1));
  cd.emplace_back(std::move(q2));
  const ClusterMoments c = Aggregate(MomentMatrix::FromObjects(cc));
  const ClusterMoments d = Aggregate(MomentMatrix::FromObjects(cd));
  EXPECT_NEAR(UkmeansObjective(c), UkmeansObjective(d), 1e-9);
  // ... while the total member variances differ substantially:
  double var_c = 0.0, var_d = 0.0;
  for (std::size_t j = 0; j < 1; ++j) {
    var_c += c.sum_var()[j];
    var_d += d.sum_var()[j];
  }
  EXPECT_GT(std::fabs(var_c - var_d), 0.5);
  // And UCPC's objective does tell the two clusters apart:
  EXPECT_GT(std::fabs(UcpcObjective(c) - UcpcObjective(d)), 0.1);
}

TEST(Proposition2, MmvarEqualsJukOverSize) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto objs = RandomCluster(7, 3, seed);
    const ClusterMoments c = Aggregate(MomentMatrix::FromObjects(objs));
    EXPECT_NEAR(MmvarObjective(c), UkmeansObjective(c) / 7.0,
                1e-9 * (1.0 + MmvarObjective(c)));
  }
}

TEST(Proposition2, MixtureVarianceMatchesMonteCarlo) {
  // Independent check of J_MM: sample the mixture centroid (pick a member
  // uniformly, then sample it) and compare the empirical total variance.
  const auto objs = RandomCluster(5, 2, 42);
  const ClusterMoments c = Aggregate(MomentMatrix::FromObjects(objs));
  const double jmm = MmvarObjective(c);
  common::Rng rng(99);
  common::RunningStats d0, d1;
  for (int t = 0; t < 400000; ++t) {
    const auto& o = objs[rng.Index(objs.size())];
    d0.Add(o.pdf(0).Sample(&rng));
    d1.Add(o.pdf(1).Sample(&rng));
  }
  const double mc_var = d0.population_variance() + d1.population_variance();
  EXPECT_NEAR(mc_var, jmm, 0.02 * (1.0 + jmm));
}

TEST(Proposition3, MixedObjectiveIsTwiceJuk) {
  // J^(C) = sum_o ED^(o, C_MM) where the mixture centroid's moments follow
  // Lemma 2; verify J^ = 2 J_UK = 2 |C| J_MM.
  const auto objs = RandomCluster(6, 3, 17);
  const MomentMatrix mm = MomentMatrix::FromObjects(objs);
  const ClusterMoments c = Aggregate(mm);
  const std::size_t n = objs.size();
  const std::size_t m = mm.dims();
  double j_hat = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double mu_mm = c.sum_mu()[j] / static_cast<double>(n);
      const double mu2_mm = c.sum_mu2()[j] / static_cast<double>(n);
      j_hat += mm.second_moment(i)[j] - 2.0 * mm.mean(i)[j] * mu_mm + mu2_mm;
    }
  }
  EXPECT_NEAR(j_hat, 2.0 * UkmeansObjective(c), 1e-9 * (1.0 + j_hat));
  EXPECT_NEAR(j_hat, 2.0 * static_cast<double>(n) * MmvarObjective(c),
              1e-9 * (1.0 + j_hat));
}

TEST(Theorem1, UCentroidRealizationsLiveInAveragedRegion) {
  const auto objs = RandomCluster(4, 3, 5);
  // Averaged region bounds per Theorem 1.
  std::vector<double> lo(3, 0.0), hi(3, 0.0);
  for (const auto& o : objs) {
    for (std::size_t j = 0; j < 3; ++j) {
      lo[j] += o.region().lower()[j];
      hi[j] += o.region().upper()[j];
    }
  }
  for (std::size_t j = 0; j < 3; ++j) {
    lo[j] /= static_cast<double>(objs.size());
    hi[j] /= static_cast<double>(objs.size());
  }
  common::Rng rng(6);
  for (int t = 0; t < 5000; ++t) {
    const auto x = SampleUCentroid(objs, &rng);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(x[j], lo[j] - 1e-12);
      EXPECT_LE(x[j], hi[j] + 1e-12);
    }
  }
}

TEST(Theorem1, UCentroidMeanIsAverageOfMeans) {
  const auto objs = RandomCluster(5, 2, 7);
  common::Rng rng(8);
  common::RunningStats d0, d1;
  for (int t = 0; t < 200000; ++t) {
    const auto x = SampleUCentroid(objs, &rng);
    d0.Add(x[0]);
    d1.Add(x[1]);
  }
  double m0 = 0.0, m1 = 0.0;
  for (const auto& o : objs) {
    m0 += o.mean()[0];
    m1 += o.mean()[1];
  }
  m0 /= static_cast<double>(objs.size());
  m1 /= static_cast<double>(objs.size());
  EXPECT_NEAR(d0.mean(), m0, 5e-3);
  EXPECT_NEAR(d1.mean(), m1, 5e-3);
}

TEST(Theorem2, UCentroidVarianceIsAveragedMemberVariance) {
  for (uint64_t seed : {11u, 12u}) {
    const auto objs = RandomCluster(6, 2, seed);
    double sum_var = 0.0;
    for (const auto& o : objs) sum_var += o.total_variance();
    const double expected =
        sum_var / static_cast<double>(objs.size() * objs.size());
    common::Rng rng(seed + 100);
    common::RunningStats d0, d1;
    for (int t = 0; t < 300000; ++t) {
      const auto x = SampleUCentroid(objs, &rng);
      d0.Add(x[0]);
      d1.Add(x[1]);
    }
    const double mc = d0.population_variance() + d1.population_variance();
    EXPECT_NEAR(mc, expected, 0.03 * (1.0 + expected)) << "seed " << seed;
  }
}

TEST(Theorem2, VarianceCriterionIgnoresObjectSpread) {
  // The failure mode of minimizing sigma^2(U-centroid) (Figure 2): a cluster
  // of two tiny-variance objects very far apart scores *better* than a
  // cluster of two overlapping moderate-variance objects.
  std::vector<PdfPtr> a1, a2, b1, b2;
  a1.push_back(MakeUncertainPdf(PdfFamily::kNormal, -50.0, 0.01));
  a2.push_back(MakeUncertainPdf(PdfFamily::kNormal, 50.0, 0.01));
  b1.push_back(MakeUncertainPdf(PdfFamily::kNormal, 0.0, 0.5));
  b2.push_back(MakeUncertainPdf(PdfFamily::kNormal, 0.1, 0.5));
  std::vector<UncertainObject> far_apart, overlapping;
  far_apart.emplace_back(std::move(a1));
  far_apart.emplace_back(std::move(a2));
  overlapping.emplace_back(std::move(b1));
  overlapping.emplace_back(std::move(b2));
  const ClusterMoments ca = Aggregate(MomentMatrix::FromObjects(far_apart));
  const ClusterMoments cb = Aggregate(MomentMatrix::FromObjects(overlapping));
  // U-centroid variance (Theorem 2 value) prefers the far-apart cluster...
  double var_a = 0.0, var_b = 0.0;
  var_a = ca.sum_var()[0] / 4.0;
  var_b = cb.sum_var()[0] / 4.0;
  EXPECT_LT(var_a, var_b);
  // ...while the UCPC objective correctly prefers the overlapping one.
  EXPECT_LT(UcpcObjective(cb), UcpcObjective(ca));
}

TEST(Theorem3, ClosedFormMatchesMonteCarloExpectedDistance) {
  const auto objs = RandomCluster(5, 2, 21);
  const MomentMatrix mm = MomentMatrix::FromObjects(objs);
  const ClusterMoments c = Aggregate(mm);
  const double closed = UcpcObjective(c);

  // MC of sum_o ED^(o, U-centroid) with o's realization independent of the
  // centroid's (Lemma 3's independence assumption).
  common::Rng rng(22);
  double acc = 0.0;
  const int trials = 200000;
  std::vector<double> xo(2);
  for (int t = 0; t < trials; ++t) {
    const auto xc = SampleUCentroid(objs, &rng);
    const std::size_t i = static_cast<std::size_t>(t) % objs.size();
    objs[i].SampleInto(&rng, xo);
    acc += common::SquaredDistance(xo, xc) * static_cast<double>(objs.size());
  }
  const double mc = acc / trials;
  EXPECT_NEAR(mc, closed, 0.03 * (1.0 + closed));
}

TEST(Theorem3, PerObjectClosedFormMatchesMonteCarlo) {
  const auto objs = RandomCluster(4, 3, 31);
  const MomentMatrix mm = MomentMatrix::FromObjects(objs);
  const ClusterMoments c = Aggregate(mm);
  const std::size_t target = 2;
  const double closed = ExpectedDistanceToUCentroid(c, mm, target);
  common::Rng rng(32);
  common::RunningStats stats;
  std::vector<double> xo(3);
  for (int t = 0; t < 300000; ++t) {
    const auto xc = SampleUCentroid(objs, &rng);
    objs[target].SampleInto(&rng, xo);
    stats.Add(common::SquaredDistance(xo, xc));
  }
  EXPECT_NEAR(stats.mean(), closed, 0.03 * (1.0 + closed));
}

TEST(Theorem3, FigureOneScenario) {
  // Figure 1: two clusters with the same central tendency, different
  // variances. J_UK cannot tell them apart; J (UCPC) prefers the compact one.
  std::vector<UncertainObject> tight, loose;
  for (double mu : {-1.0, 0.0, 1.0}) {
    std::vector<PdfPtr> dt, dl;
    dt.push_back(MakeUncertainPdf(PdfFamily::kNormal, mu, 0.1));
    dl.push_back(MakeUncertainPdf(PdfFamily::kNormal, mu, 1.0));
    tight.emplace_back(std::move(dt));
    loose.emplace_back(std::move(dl));
  }
  const ClusterMoments ct = Aggregate(MomentMatrix::FromObjects(tight));
  const ClusterMoments cl = Aggregate(MomentMatrix::FromObjects(loose));
  // J_UK difference comes only from the variance-induced mu2 shift; the
  // *mean geometry* term is identical. UCPC adds the variance term on top,
  // so its preference for the tight cluster is strictly stronger.
  const double gap_uk = UkmeansObjective(cl) - UkmeansObjective(ct);
  const double gap_ucpc = UcpcObjective(cl) - UcpcObjective(ct);
  EXPECT_GT(gap_ucpc, gap_uk);
  EXPECT_LT(UcpcObjective(ct), UcpcObjective(cl));
}

}  // namespace
}  // namespace uclust::clustering
