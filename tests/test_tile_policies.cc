// Workload-aware PairwiseStore tile-policy contract: asymmetric gather
// blocks serve the same bits the dense table holds, the gather-tile
// UK-medoids swap sweep is clustering-identical to the full sweep at a
// strictly lower kernel-evaluation count, the warm-row cache obeys its
// hit/miss counters and generation/invalidation protocol under the memory
// budget, and the column-pruned FDBSCAN sweep skips only pairs whose
// distance probability is provably 0.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "clustering/fdbscan.h"
#include "clustering/pairwise_store.h"
#include "clustering/pruning.h"
#include "clustering/ukmedoids.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "engine/engine.h"
#include "uncertain/sample_store.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset TestDataset(std::size_t n, std::size_t m, int classes,
                                   uint64_t seed,
                                   double min_separation = 0.25) {
  data::MixtureParams params;
  params.n = n;
  params.dims = m;
  params.classes = classes;
  params.min_separation = min_separation;
  const data::DeterministicDataset d =
      data::MakeGaussianMixture(params, seed, "tile-policies");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

PairwiseStoreOptions Explicit(PairwiseBackend backend, std::size_t tile_rows,
                              std::size_t max_tiles, bool warm_rows,
                              std::size_t warm_capacity) {
  PairwiseStoreOptions o;
  o.backend = backend;
  o.tile_rows = tile_rows;
  o.max_cached_tiles = max_tiles;
  o.warm_rows = warm_rows;
  o.warm_capacity_bytes = warm_capacity;
  return o;
}

engine::Engine PolicyEngine(std::size_t budget, bool gather, bool warm,
                            bool pruned, int threads = 1) {
  engine::EngineConfig config;
  config.num_threads = threads;
  config.block_size = 32;
  config.memory_budget_bytes = budget;
  config.pairwise_gather_tiles = gather;
  config.pairwise_warm_rows = warm;
  config.pairwise_pruned_sweeps = pruned;
  return engine::Engine(config);
}

std::vector<double> CollectSymmetricBlock(PairwiseStore* store,
                                          std::span<const std::size_t> ids) {
  std::vector<double> block(ids.size() * ids.size(), -1.0);
  store->VisitSymmetricBlock(
      ids, [&](std::size_t a, std::span<const double> row) {
        for (std::size_t b = 0; b < row.size(); ++b) {
          block[a * ids.size() + b] = row[b];
        }
      });
  return block;
}

TEST(TilePolicies, VisitSymmetricBlockMatchesDenseReference) {
  const auto ds = TestDataset(57, 3, 3, 101);
  const std::size_t n = ds.size();
  const engine::Engine eng;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(ds.objects());
  PairwiseStore reference(eng, kernel,
                          Explicit(PairwiseBackend::kDense, 0, 0, false, 0));

  // Every other object — an id set crossing several tiles.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < n; i += 2) ids.push_back(i);

  for (PairwiseBackend backend :
       {PairwiseBackend::kDense, PairwiseBackend::kTiled,
        PairwiseBackend::kOnTheFly}) {
    const bool warm = backend == PairwiseBackend::kTiled;
    PairwiseStore store(
        eng, kernel,
        Explicit(backend, 5, 2, warm, warm ? 8 * n * sizeof(double) : 0));
    // Seed the warm cache / resident tiles so the block mixes served rows
    // (copied and mirrored) with computed rows.
    std::vector<double> seeded;
    store.GatherRows(std::vector<std::size_t>{ids[1], ids[3]}, &seeded);
    if (backend == PairwiseBackend::kTiled) store.Row(ids[0]);

    const std::vector<double> block = CollectSymmetricBlock(&store, ids);
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = 0; b < ids.size(); ++b) {
        ASSERT_EQ(block[a * ids.size() + b],
                  reference.Value(ids[a], ids[b]))
            << PairwiseBackendName(backend) << " " << a << "," << b;
      }
    }
  }
}

// A budget too small to hold the whole |ids| x |ids| slab must stream
// bounded row stripes — same values, scratch within the one-block-row
// floor, never an O(|ids|^2) allocation inside the store.
TEST(TilePolicies, VisitSymmetricBlockStripesOversizedBlocks) {
  const auto ds = TestDataset(90, 2, 2, 131);
  const std::size_t n = ds.size();
  const engine::Engine eng;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(ds.objects());
  PairwiseStore reference(eng, kernel,
                          Explicit(PairwiseBackend::kDense, 0, 0, false, 0));

  std::vector<std::size_t> ids(n);  // the worst case: one giant cluster
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;

  // Budget of ~3 block rows: far below the n x n slab, so the visit must
  // stripe. Warm cache off to pin the expected evaluation count.
  PairwiseStoreOptions o = Explicit(PairwiseBackend::kTiled, 4, 1, false, 0);
  o.memory_budget_bytes = 3 * n * sizeof(double);
  PairwiseStore store(eng, kernel, o);
  const std::vector<double> block = CollectSymmetricBlock(&store, ids);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      ASSERT_EQ(block[a * n + b], reference.Value(a, b)) << a << "," << b;
    }
  }
  // Scratch stayed within the budget (stripes, not the whole slab).
  EXPECT_LE(store.table_bytes_peak(),
            o.memory_budget_bytes + 4 * n * sizeof(double));  // + tile LRU
}

// The gather-tile swap sweep must reproduce the full-sweep clustering
// bit-for-bit on every backend while evaluating strictly fewer pairs on the
// recomputing backends.
TEST(TilePolicies, UkMedoidsGatherPolicyBitIdenticalWithFewerEvaluations) {
  const auto ds = TestDataset(120, 3, 3, 103);
  const std::size_t row_bytes = ds.size() * sizeof(double);

  UkMedoids::Params mp;
  mp.use_closed_form = true;
  const auto run = [&](std::size_t budget, bool gather, bool warm) {
    UkMedoids algo(mp);
    algo.set_engine(PolicyEngine(budget, gather, warm, true));
    return algo.Cluster(ds, 3, 7);
  };

  for (const std::size_t budget : {std::size_t{0}, 12 * row_bytes,
                                   std::size_t{1}}) {
    const ClusteringResult full = run(budget, false, false);
    for (const bool warm : {false, true}) {
      const ClusteringResult gathered = run(budget, true, warm);
      EXPECT_EQ(gathered.labels, full.labels)
          << "budget=" << budget << " warm=" << warm;
      EXPECT_EQ(gathered.iterations, full.iterations) << "budget=" << budget;
      EXPECT_EQ(gathered.objective, full.objective) << "budget=" << budget;
      if (budget != 0) {
        // Tiled / on-the-fly recompute per sweep: the member x member
        // blocks must beat the full-table sweeps.
        EXPECT_LT(gathered.pair_evaluations, full.pair_evaluations)
            << "budget=" << budget << " warm=" << warm;
      }
    }
  }
}

TEST(TilePolicies, WarmRowCountersAndGenerationInvalidation) {
  const auto ds = TestDataset(48, 2, 2, 107);
  const std::size_t n = ds.size();
  const engine::Engine eng;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(ds.objects());
  PairwiseStoreOptions options =
      Explicit(PairwiseBackend::kTiled, 8, 1, true, 4 * n * sizeof(double));
  options.warm_retain_generations = 2;
  PairwiseStore store(eng, kernel, options);

  std::vector<double> row;
  store.GatherRow(40, &row);  // outside any resident tile: computed
  EXPECT_EQ(store.warm_misses(), 1);
  EXPECT_EQ(store.warm_hits(), 0);

  store.GatherRow(40, &row);  // retained: a warm hit, no new evaluations
  const int64_t evals_after_first = store.evaluations();
  EXPECT_EQ(store.warm_hits(), 1);
  EXPECT_EQ(store.warm_misses(), 1);
  EXPECT_EQ(store.evaluations(), evals_after_first);

  // Within the retention window the row stays warm.
  store.BeginGeneration();
  store.GatherRow(40, &row);
  EXPECT_EQ(store.warm_hits(), 2);
  EXPECT_EQ(store.warm_misses(), 1);

  // Untouched past the retention window: invalidated at generation start.
  store.BeginGeneration();
  store.BeginGeneration();
  store.BeginGeneration();
  store.GatherRow(40, &row);
  EXPECT_EQ(store.warm_hits(), 2);
  EXPECT_EQ(store.warm_misses(), 2);

  // Explicit invalidation drops the row immediately.
  store.InvalidateWarmRows();
  EXPECT_EQ(store.warm_bytes(), std::size_t{0});
  store.GatherRow(40, &row);
  EXPECT_EQ(store.warm_misses(), 3);

  // Counters only ever grow (monotonicity is what makes them per-phase
  // differences meaningful in ClusteringResult).
  EXPECT_GE(store.warm_hits(), 2);
  EXPECT_GE(store.warm_misses(), 3);
}

TEST(TilePolicies, WarmCacheEvictsWithinItsCapacityAndBudget) {
  const auto ds = TestDataset(64, 2, 2, 109);
  const std::size_t n = ds.size();
  const std::size_t row_bytes = n * sizeof(double);
  const engine::Engine eng;
  const kernels::PairwiseKernel kernel =
      kernels::PairwiseKernel::ClosedFormED2(ds.objects());

  // Budget-derived tiled store: tile LRU + warm cache must fit the budget.
  const std::size_t budget = 12 * row_bytes;
  PairwiseStore store(eng, kernel,
                      PairwiseStoreOptions::FromBudget(budget, n));
  ASSERT_EQ(store.backend(), PairwiseBackend::kTiled);
  ASSERT_TRUE(store.options().warm_rows);
  std::vector<double> row;
  for (std::size_t i = 0; i < n; ++i) {
    store.GatherRow(i, &row);
    EXPECT_LE(store.warm_bytes(), store.options().warm_capacity_bytes);
  }
  store.VisitAllRows([](std::size_t, std::span<const double>) {});
  EXPECT_LE(store.table_bytes_peak(), budget);

  // A warm capacity below one row disables the policy instead of thrashing.
  PairwiseStore tiny(eng, kernel,
                     Explicit(PairwiseBackend::kTiled, 4, 2, true,
                              row_bytes - 1));
  EXPECT_FALSE(tiny.options().warm_rows);
}

// Pruned sweep contract on a separable dataset: identical labels, strictly
// fewer kernel evaluations, and every pair accounted as either evaluated or
// pruned.
TEST(TilePolicies, FdbscanPrunedSweepBitIdenticalWithFewerEvaluations) {
  const auto ds = TestDataset(150, 2, 3, 113, /*min_separation=*/0.45);
  const std::size_t n = ds.size();

  Fdbscan::Params fp;
  fp.eps = 0.08;  // well below the class separation: cross-class pairs prune
  const auto run = [&](std::size_t budget, bool pruned) {
    Fdbscan algo(fp);
    algo.set_engine(PolicyEngine(budget, true, true, pruned));
    return algo.Cluster(ds, 3, 17);
  };

  const std::size_t row_bytes = n * sizeof(double);
  for (const std::size_t budget : {std::size_t{0}, 10 * row_bytes}) {
    const ClusteringResult plain = run(budget, false);
    const ClusteringResult pruned = run(budget, true);
    EXPECT_EQ(pruned.labels, plain.labels) << "budget=" << budget;
    EXPECT_EQ(pruned.clusters_found, plain.clusters_found);
    EXPECT_EQ(pruned.noise_objects, plain.noise_objects);
    EXPECT_GT(pruned.pairs_pruned, 0) << "budget=" << budget;
    EXPECT_LT(pruned.ed_evaluations, plain.ed_evaluations)
        << "budget=" << budget;
    const int64_t all_pairs =
        static_cast<int64_t>(n) * static_cast<int64_t>(n - 1) / 2;
    EXPECT_EQ(plain.pair_evaluations, all_pairs);
    EXPECT_EQ(pruned.pair_evaluations + pruned.pairs_pruned, all_pairs);
  }
}

// Zero-radius (Dirac) and degenerate-box pairs: the bound must be the EXACT
// squared center distance — the sqrt/re-square round trip of the radius
// bound can overshoot by ulps and would turn a valid lower bound into an
// invalid one at the eps boundary.
TEST(TilePolicies, PairwiseBoundIndexExactOnZeroRadiusPairs) {
  // Coordinates chosen so sqrt(d2) is irrational: the round trip through
  // sqrt is where the historical overshoot lived.
  const std::vector<std::vector<double>> points = {
      {0.1, 0.2}, {0.4, 0.7}, {-0.3, 0.55}, {0.1, 0.2}};
  std::vector<uncertain::UncertainObject> objects;
  for (const auto& p : points) {
    objects.push_back(uncertain::UncertainObject::Deterministic(p));
  }
  const PairwiseBoundIndex bounds(objects);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    for (std::size_t j = i + 1; j < objects.size(); ++j) {
      double d2 = 0.0;
      for (std::size_t m = 0; m < points[i].size(); ++m) {
        const double diff = points[i][m] - points[j][m];
        d2 += diff * diff;
      }
      EXPECT_EQ(bounds.MinSquaredDistance(i, j), d2) << i << "," << j;
      // ProvablyBeyond decides on the exact center distance: beyond for any
      // eps below the true distance, not beyond at or above it.
      const double dist = std::sqrt(d2);
      if (d2 > 0.0) {
        EXPECT_TRUE(bounds.ProvablyBeyond(i, j, dist * 0.999999));
      }
      EXPECT_FALSE(bounds.ProvablyBeyond(i, j, dist));
      EXPECT_FALSE(bounds.ProvablyBeyond(i, j, dist * 1.000001));
    }
  }
  // The coincident Dirac pair: exact zero, never provably beyond.
  EXPECT_EQ(bounds.MinSquaredDistance(0, 3), 0.0);
  EXPECT_FALSE(bounds.ProvablyBeyond(0, 3, 0.0));
}

// A mixed pair (one degenerate box, one fat box) must stay a valid lower
// bound and agree with the exact box-box separation.
TEST(TilePolicies, PairwiseBoundIndexMixedDegeneratePairs) {
  std::vector<uncertain::UncertainObject> objects;
  objects.push_back(
      uncertain::UncertainObject::Deterministic(std::vector<double>{0.0, 0.0}));
  std::vector<uncertain::PdfPtr> dims;
  dims.push_back(uncertain::UniformPdf::Centered(1.0, 0.25));
  dims.push_back(uncertain::UniformPdf::Centered(0.0, 0.25));
  objects.emplace_back(std::move(dims));
  const PairwiseBoundIndex bounds(objects);
  const double exact =
      objects[0].region().MinSquaredDistanceTo(objects[1].region());
  const double lb = bounds.MinSquaredDistance(0, 1);
  EXPECT_LE(lb, exact);   // a lower bound on any realization distance
  EXPECT_GE(lb, exact * (1.0 - 1e-12));  // and a tight one: the box bound
  // Inside overlap there is nothing to prove.
  EXPECT_FALSE(bounds.ProvablyBeyond(0, 1, std::sqrt(exact) * 1.01));
  EXPECT_TRUE(bounds.ProvablyBeyond(0, 1, std::sqrt(exact) * 0.9));
}

// The indexed FDBSCAN sweep composes "index narrows, predicate filters":
// whichever structure narrows the candidate set, the evaluated pairs — and
// with them the labels and both pruning counters — must be bit-identical to
// the all-pairs predicate sweep, with only the bound-test count dropping.
TEST(TilePolicies, FdbscanIndexedSweepCounterIdentical) {
  const auto ds = TestDataset(150, 2, 3, 113, /*min_separation=*/0.45);
  const std::size_t n = ds.size();

  Fdbscan::Params fp;
  fp.eps = 0.08;
  const auto run = [&](std::size_t budget, const std::string& index) {
    engine::EngineConfig config;
    config.num_threads = 1;
    config.block_size = 32;
    config.memory_budget_bytes = budget;
    config.pairwise_gather_tiles = true;
    config.pairwise_warm_rows = true;
    config.pairwise_pruned_sweeps = true;
    config.spatial_index = index;
    Fdbscan algo(fp);
    algo.set_engine(engine::Engine(config));
    return algo.Cluster(ds, 3, 17);
  };

  const std::size_t row_bytes = n * sizeof(double);
  const int64_t all_pairs =
      static_cast<int64_t>(n) * static_cast<int64_t>(n - 1) / 2;
  for (const std::size_t budget : {std::size_t{0}, 10 * row_bytes}) {
    const ClusteringResult off = run(budget, "off");
    EXPECT_EQ(off.index_candidates, 0);
    EXPECT_EQ(off.index_bound_tests, 0);
    for (const char* index : {"rtree", "grid", "auto"}) {
      const ClusteringResult indexed = run(budget, index);
      EXPECT_EQ(indexed.labels, off.labels)
          << index << " budget=" << budget;
      EXPECT_EQ(indexed.clusters_found, off.clusters_found) << index;
      EXPECT_EQ(indexed.noise_objects, off.noise_objects) << index;
      // The exact counter identity: same pairs evaluated, same pairs
      // predicate-pruned, every pair accounted for.
      EXPECT_EQ(indexed.pair_evaluations, off.pair_evaluations) << index;
      EXPECT_EQ(indexed.pairs_pruned, off.pairs_pruned) << index;
      EXPECT_EQ(indexed.ed_evaluations, off.ed_evaluations) << index;
      EXPECT_EQ(indexed.pair_evaluations + indexed.pairs_pruned, all_pairs)
          << index << " budget=" << budget;
      EXPECT_EQ(indexed.index_candidates + indexed.pairs_pruned_by_index,
                all_pairs)
          << index << " budget=" << budget;
      // The index did real narrowing on this separable dataset. (The
      // bound-cost advantage over the n*(n-1)/2 floor only materializes at
      // scale — bench_pairwise_smoke gates it at CI size.)
      EXPECT_GT(indexed.pairs_pruned_by_index, 0) << index;
      EXPECT_GT(indexed.index_candidates, 0) << index;
      EXPECT_GT(indexed.index_bound_tests, 0) << index;
    }
  }
}

// The bound the pruned sweep consults must hold for every realization pair
// the distance-probability kernel integrates over.
TEST(TilePolicies, PairwiseBoundIndexLowerBoundsSampleDistances) {
  const auto ds = TestDataset(40, 3, 3, 127);
  const engine::Engine eng;
  const uncertain::ResidentSampleStore store(ds.objects(), 16, 0x5eed, eng);
  const uncertain::SampleView cache = store.view();
  const PairwiseBoundIndex bounds(ds.objects());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      const double lb = bounds.MinSquaredDistance(i, j);
      for (int s = 0; s < cache.samples_per_object(); ++s) {
        double d2 = 0.0;
        const auto a = cache.SampleOf(i, s);
        const auto b = cache.SampleOf(j, s);
        for (std::size_t m = 0; m < a.size(); ++m) {
          const double diff = a[m] - b[m];
          d2 += diff * diff;
        }
        ASSERT_LE(lb, d2 * (1.0 + 1e-12)) << i << "," << j << " s=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace uclust::clustering
