// Tests for U-AHC (group-average agglomerative clustering over ED^).
#include <gtest/gtest.h>

#include <limits>

#include "clustering/uahc.h"
#include "uncertain/expected_distance.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "uncertain/dirac_pdf.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset PlantedDataset(std::size_t n, int classes,
                                      uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 3;
  params.classes = classes;
  params.sigma_min = 0.02;
  params.sigma_max = 0.04;
  params.min_separation = 0.5;
  const auto d = data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  // Pairwise ED^ adds sigma^2(a) + sigma^2(b) to every distance, so heavy
  // heterogeneous uncertainty swamps group-average linkage (high-variance
  // objects look far from everything). Keep the uncertainty moderate here;
  // the variance-domination effect itself is covered by
  // VarianceAwareMerging below.
  up.min_scale_frac = 0.01;
  up.max_scale_frac = 0.04;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

// Dataset of deterministic 1-D points for hand-checkable merges.
data::UncertainDataset PointLine(const std::vector<double>& xs) {
  std::vector<uncertain::UncertainObject> objs;
  for (double x : xs) {
    objs.push_back(
        uncertain::UncertainObject::Deterministic(std::vector<double>{x}));
  }
  return data::UncertainDataset("line", std::move(objs), {}, 0);
}

TEST(Uahc, ProducesExactlyKClusters) {
  const auto ds = PlantedDataset(90, 4, 1);
  const Uahc algo;
  for (int k : {1, 2, 4, 7}) {
    const ClusteringResult r = algo.Cluster(ds, k, 2);
    EXPECT_EQ(r.clusters_found, k) << "k=" << k;
    EXPECT_EQ(r.iterations, static_cast<int>(ds.size()) - k);
  }
}

TEST(Uahc, RecoversPlantedClusters) {
  const auto ds = PlantedDataset(150, 3, 3);
  const Uahc algo;
  const ClusteringResult r = algo.Cluster(ds, 3, 4);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), r.labels), 0.85);
}

TEST(Uahc, HandCheckableMergeOrder) {
  // Points 0, 0.1 | 5, 5.1 -> with k=2 the two tight pairs must pair up.
  const auto ds = PointLine({0.0, 0.1, 5.0, 5.1});
  const Uahc algo;
  const ClusteringResult r = algo.Cluster(ds, 2, 5);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[2], r.labels[3]);
  EXPECT_NE(r.labels[0], r.labels[2]);
}

TEST(Uahc, GroupAverageBalancesChaining) {
  // A chain 0, 1, 2, ..., 7 and an isolated point at 100: with k = 2 the
  // chain stays together and the outlier is alone.
  const auto ds = PointLine({0, 1, 2, 3, 4, 5, 6, 7, 100});
  const Uahc algo;
  const ClusteringResult r = algo.Cluster(ds, 2, 6);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(r.labels[i], r.labels[0]);
  EXPECT_NE(r.labels[8], r.labels[0]);
}

TEST(Uahc, VarianceAwareMerging) {
  // Two objects with identical means but very different variances are
  // farther apart (ED^ adds variances) than two sharp objects with slightly
  // different means — UAHC over ED^ must prefer merging the sharp pair.
  std::vector<uncertain::UncertainObject> objs;
  using uncertain::DiracPdf;
  using uncertain::PdfPtr;
  // Sharp pair at 0.0 and 0.2.
  objs.push_back(
      uncertain::UncertainObject::Deterministic(std::vector<double>{0.0}));
  objs.push_back(
      uncertain::UncertainObject::Deterministic(std::vector<double>{0.2}));
  // Fuzzy object at 0.1 with large variance.
  std::vector<PdfPtr> fuzzy;
  fuzzy.push_back(data::MakeUncertainPdf(data::PdfFamily::kNormal, 0.1, 2.0));
  objs.emplace_back(std::move(fuzzy));
  const data::UncertainDataset ds("var", std::move(objs), {}, 0);
  const Uahc algo;
  const ClusteringResult r = algo.Cluster(ds, 2, 7);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_NE(r.labels[2], r.labels[0]);
}

TEST(Uahc, DeterministicAndSeedIndependent) {
  // UAHC has no random choices; any two runs agree regardless of seed.
  const auto ds = PlantedDataset(60, 3, 8);
  const Uahc algo;
  const auto a = algo.Cluster(ds, 3, 1);
  const auto b = algo.Cluster(ds, 3, 999);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Uahc, KEqualsNLeavesSingletons) {
  const auto ds = PointLine({1, 2, 3});
  const ClusteringResult r = Uahc().Cluster(ds, 3, 9);
  EXPECT_EQ(r.clusters_found, 3);
  EXPECT_EQ(r.iterations, 0);
}

// Naive O(n^3) greedy UPGMA over ED^ — the oracle the NN-chain + dendrogram
// cut must reproduce exactly.
std::vector<int> NaiveUpgma(const data::UncertainDataset& ds, int k) {
  const std::size_t n = ds.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] =
          uncertain::ExpectedSquaredDistance(ds.object(i), ds.object(j));
    }
  }
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> sz(n, 1);
  std::vector<int> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::size_t remaining = n;
  while (remaining > static_cast<std::size_t>(k)) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    const double si = static_cast<double>(sz[bi]);
    const double sj = static_cast<double>(sz[bj]);
    for (std::size_t u = 0; u < n; ++u) {
      if (!alive[u] || u == bi || u == bj) continue;
      d[bi][u] = d[u][bi] = (si * d[u][bi] + sj * d[u][bj]) / (si + sj);
    }
    sz[bi] += sz[bj];
    alive[bj] = false;
    parent[bj] = static_cast<int>(bi);
    --remaining;
  }
  std::vector<int> lab(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = i;
    while (parent[r] != static_cast<int>(r)) {
      r = static_cast<std::size_t>(parent[r]);
    }
    lab[i] = static_cast<int>(r);
  }
  return RelabelConsecutive(lab);
}

TEST(Uahc, NnChainMatchesNaiveUpgmaOracle) {
  for (uint64_t seed : {3u, 5u, 9u}) {
    const auto ds = PlantedDataset(80, 3, seed);
    for (int k : {2, 3, 5}) {
      const ClusteringResult fast = Uahc().Cluster(ds, k, 0);
      const std::vector<int> oracle = NaiveUpgma(ds, k);
      EXPECT_DOUBLE_EQ(eval::AdjustedRand(oracle, fast.labels), 1.0)
          << "seed=" << seed << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace uclust::clustering
