// Tests for the fast UK-means (reduction to K-means on expected values).
#include <gtest/gtest.h>

#include <limits>

#include "clustering/cluster_stats.h"
#include "clustering/ukmeans.h"
#include "common/math_utils.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset PlantedDataset(std::size_t n, int classes,
                                      uint64_t seed,
                                      double uncertainty_frac = 0.05) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 3;
  params.classes = classes;
  params.sigma_min = 0.02;
  params.sigma_max = 0.04;
  params.min_separation = 0.5;
  const auto d = data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  up.min_scale_frac = uncertainty_frac / 2.0;
  up.max_scale_frac = uncertainty_frac;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

// Lloyd with Forgy initialization lands in local minima for unlucky seeds
// (the paper averages 50 runs for the same reason); recovery tests therefore
// take the best-objective run over a few seeds.
ClusteringResult BestOfSeeds(const Clusterer& algo,
                             const data::UncertainDataset& ds, int k,
                             int seeds) {
  ClusteringResult best;
  best.objective = std::numeric_limits<double>::infinity();
  for (int s = 0; s < seeds; ++s) {
    ClusteringResult r = algo.Cluster(ds, k, static_cast<uint64_t>(s));
    if (r.objective < best.objective) best = std::move(r);
  }
  return best;
}

TEST(Ukmeans, RecoversPlantedClusters) {
  const auto ds = PlantedDataset(300, 4, 1);
  const Ukmeans algo;
  const ClusteringResult r = BestOfSeeds(algo, ds, 4, 8);
  EXPECT_EQ(r.clusters_found, 4);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), r.labels), 0.9);
}

TEST(Ukmeans, ObjectiveMatchesClosedFormRecomputation) {
  const auto ds = PlantedDataset(120, 3, 3);
  const Ukmeans algo;
  const ClusteringResult r = algo.Cluster(ds, 3, 4);
  // Recompute: J_UK per Lemma 1 equals sum_o ED(o, centroid) when centroids
  // are the cluster means — which is what Lloyd converges to.
  const double lemma1 =
      TotalObjective(ObjectiveKind::kUkmeans, ds.moments(), r.labels, 3);
  EXPECT_NEAR(r.objective, lemma1, 1e-6 * (1.0 + r.objective));
}

TEST(Ukmeans, DeterministicGivenSeed) {
  const auto ds = PlantedDataset(150, 3, 5);
  const Ukmeans algo;
  const auto a = algo.Cluster(ds, 3, 6);
  const auto b = algo.Cluster(ds, 3, 6);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(Ukmeans, DiracDataBehavesLikeClassicKMeans) {
  // On deterministic (Dirac) objects the variance term vanishes and the
  // objective is exactly the K-means within-cluster sum of squares.
  data::MixtureParams params;
  params.n = 200;
  params.dims = 2;
  params.classes = 3;
  params.min_separation = 0.5;
  const auto d = data::MakeGaussianMixture(params, 7, "dirac");
  const auto ds = data::UncertainDataset::FromDeterministic(d);
  const Ukmeans algo;
  const ClusteringResult r = BestOfSeeds(algo, ds, 3, 8);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds.moments().total_variance(i), 0.0);
  }
  EXPECT_GT(eval::AdjustedRand(d.labels, r.labels), 0.85);
}

TEST(Ukmeans, ObjectiveIncludesVarianceFloor) {
  // J_UK >= sum_o sigma^2(o): the variance term is an additive floor no
  // assignment can remove (Eq. 8).
  const auto ds = PlantedDataset(100, 2, 9, /*uncertainty_frac=*/0.2);
  double floor = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    floor += ds.moments().total_variance(i);
  }
  const Ukmeans algo;
  const ClusteringResult r = algo.Cluster(ds, 2, 10);
  EXPECT_GE(r.objective, floor - 1e-9);
}

TEST(Ukmeans, MoreClustersNeverHurtObjective) {
  // With best-of-several seeds, the optimal J_UK is monotone in k; check the
  // practical variant with a shared seed pool.
  const auto ds = PlantedDataset(150, 3, 11);
  const Ukmeans algo;
  auto best_for_k = [&](int k) {
    double best = std::numeric_limits<double>::infinity();
    for (uint64_t s = 0; s < 5; ++s) {
      best = std::min(best, algo.Cluster(ds, k, s).objective);
    }
    return best;
  };
  EXPECT_LE(best_for_k(4), best_for_k(2) + 1e-9);
}

TEST(Ukmeans, HandlesKEqualsN) {
  const auto ds = PlantedDataset(20, 2, 13);
  const Ukmeans algo;
  const ClusteringResult r = algo.Cluster(ds, 20, 14);
  ASSERT_EQ(r.labels.size(), 20u);
  EXPECT_LE(r.clusters_found, 20);
  EXPECT_GE(r.clusters_found, 1);
}

TEST(Ukmeans, IterationCountBounded) {
  Ukmeans::Params p;
  p.max_iters = 2;
  const Ukmeans algo(p);
  const auto ds = PlantedDataset(200, 4, 15);
  const ClusteringResult r = algo.Cluster(ds, 4, 16);
  EXPECT_LE(r.iterations, 2);
}

}  // namespace
}  // namespace uclust::clustering
