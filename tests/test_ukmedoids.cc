// Tests for UK-medoids (PAM over pairwise expected distances).
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "clustering/ukmedoids.h"
#include "data/benchmark_gen.h"
#include "data/uncertainty_model.h"
#include "eval/external.h"
#include "uncertain/expected_distance.h"

namespace uclust::clustering {
namespace {

data::UncertainDataset PlantedDataset(std::size_t n, int classes,
                                      uint64_t seed) {
  data::MixtureParams params;
  params.n = n;
  params.dims = 3;
  params.classes = classes;
  params.sigma_min = 0.02;
  params.sigma_max = 0.04;
  params.min_separation = 0.5;
  const auto d = data::MakeGaussianMixture(params, seed, "planted");
  data::UncertaintyParams up;
  up.family = data::PdfFamily::kNormal;
  return data::UncertaintyModel(d, up, seed + 1).Uncertain();
}

// PAM with random medoid init is seed-sensitive; take best objective.
ClusteringResult BestOfSeeds(const Clusterer& algo,
                             const data::UncertainDataset& ds, int k,
                             int seeds) {
  ClusteringResult best;
  best.objective = std::numeric_limits<double>::infinity();
  for (int s = 0; s < seeds; ++s) {
    ClusteringResult r = algo.Cluster(ds, k, static_cast<uint64_t>(s));
    if (r.objective < best.objective) best = std::move(r);
  }
  return best;
}

TEST(UkMedoids, RecoversPlantedClustersClosedForm) {
  UkMedoids::Params p;
  p.use_closed_form = true;
  const UkMedoids algo(p);
  const auto ds = PlantedDataset(150, 3, 1);
  const ClusteringResult r = algo.Cluster(ds, 3, 2);
  EXPECT_EQ(r.clusters_found, 3);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), r.labels), 0.85);
  EXPECT_EQ(r.ed_evaluations, 0);  // closed form counts no integrations
}

TEST(UkMedoids, RecoversPlantedClustersSampled) {
  const UkMedoids algo;
  const auto ds = PlantedDataset(120, 3, 3);
  const ClusteringResult r = BestOfSeeds(algo, ds, 3, 8);
  EXPECT_GT(eval::AdjustedRand(ds.labels(), r.labels), 0.8);
  // Offline table: n(n-1)/2 sampled integrations.
  EXPECT_EQ(r.ed_evaluations, 120 * 119 / 2);
}

TEST(UkMedoids, SampledModeAgreesWithClosedFormOnSeparatedData) {
  const auto ds = PlantedDataset(100, 3, 5);
  UkMedoids::Params exact_params;
  exact_params.use_closed_form = true;
  const ClusteringResult exact = UkMedoids(exact_params).Cluster(ds, 3, 6);
  const ClusteringResult sampled = UkMedoids().Cluster(ds, 3, 6);
  EXPECT_GT(eval::AdjustedRand(exact.labels, sampled.labels), 0.9);
}

TEST(UkMedoids, DeterministicGivenSeeds) {
  const auto ds = PlantedDataset(80, 2, 7);
  const UkMedoids algo;
  const auto a = algo.Cluster(ds, 2, 8);
  const auto b = algo.Cluster(ds, 2, 8);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(UkMedoids, ObjectiveIsSumOfMemberToMedoidDistances) {
  UkMedoids::Params p;
  p.use_closed_form = true;
  const UkMedoids algo(p);
  const auto ds = PlantedDataset(60, 2, 9);
  const ClusteringResult r = algo.Cluster(ds, 2, 10);
  EXPECT_GT(r.objective, 0.0);
  // Lower bound: sum of (2x) total variances — ED^ between distinct objects
  // is at least the sum of their variances, and the medoid's own term is
  // 2 sigma^2(medoid) > 0.
  EXPECT_TRUE(std::isfinite(r.objective));
}

TEST(UkMedoids, KEqualsOneSingleCluster) {
  UkMedoids::Params p;
  p.use_closed_form = true;
  const auto ds = PlantedDataset(40, 2, 11);
  const ClusteringResult r = UkMedoids(p).Cluster(ds, 1, 12);
  EXPECT_EQ(r.clusters_found, 1);
}

TEST(UkMedoids, OfflinePhaseDominatesRuntimeAccounting) {
  const auto ds = PlantedDataset(120, 3, 13);
  const ClusteringResult r = UkMedoids().Cluster(ds, 3, 14);
  // The pairwise sampled table must be attributed offline, not online.
  EXPECT_GT(r.offline_ms, 0.0);
  EXPECT_GE(r.online_ms, 0.0);
}

}  // namespace
}  // namespace uclust::clustering
