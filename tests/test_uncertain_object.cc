// Tests for Box geometry, UncertainObject moment aggregation, MomentMatrix
// packing, and the Resident sample store.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "uncertain/box.h"
#include "uncertain/dirac_pdf.h"
#include "uncertain/moments.h"
#include "uncertain/normal_pdf.h"
#include "uncertain/sample_store.h"
#include "uncertain/uncertain_object.h"
#include "uncertain/uniform_pdf.h"

namespace uclust::uncertain {
namespace {

UncertainObject MakeObject2D(double mx, double sx, double my, double sy) {
  std::vector<PdfPtr> dims;
  dims.push_back(TruncatedNormalPdf::Make(mx, sx));
  dims.push_back(TruncatedNormalPdf::Make(my, sy));
  return UncertainObject(std::move(dims));
}

TEST(Box, CenterAndContains) {
  Box box({0.0, -1.0}, {2.0, 1.0});
  EXPECT_EQ(box.dims(), 2u);
  const auto c = box.Center();
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
  const std::vector<double> inside{1.0, 0.5};
  const std::vector<double> outside{3.0, 0.0};
  EXPECT_TRUE(box.Contains(inside));
  EXPECT_FALSE(box.Contains(outside));
  EXPECT_TRUE(box.Contains(box.lower()));
  EXPECT_TRUE(box.Contains(box.upper()));
}

TEST(Box, MinMaxSquaredDistanceOutsidePoint) {
  Box box({0.0, 0.0}, {1.0, 1.0});
  const std::vector<double> p{2.0, 0.5};
  EXPECT_DOUBLE_EQ(box.MinSquaredDistanceTo(p), 1.0);   // to face x=1
  // Farthest corner is (0,0) or (0,1): dx=2, dy=0.5 -> 4+0.25.
  EXPECT_DOUBLE_EQ(box.MaxSquaredDistanceTo(p), 4.25);
}

TEST(Box, MinDistanceZeroInside) {
  Box box({0.0, 0.0}, {1.0, 1.0});
  const std::vector<double> p{0.25, 0.75};
  EXPECT_DOUBLE_EQ(box.MinSquaredDistanceTo(p), 0.0);
  EXPECT_GT(box.MaxSquaredDistanceTo(p), 0.0);
}

TEST(Box, MinMaxBracketAllBoxPoints) {
  common::Rng rng(3);
  Box box({-1.0, 2.0, 0.0}, {1.5, 3.0, 0.25});
  std::vector<double> q{4.0, -1.0, 2.0};
  const double lo = box.MinSquaredDistanceTo(q);
  const double hi = box.MaxSquaredDistanceTo(q);
  for (int t = 0; t < 2000; ++t) {
    std::vector<double> x(3);
    for (std::size_t j = 0; j < 3; ++j) {
      x[j] = rng.Uniform(box.lower()[j], box.upper()[j]);
    }
    double d = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      d += (x[j] - q[j]) * (x[j] - q[j]);
    }
    EXPECT_GE(d, lo - 1e-12);
    EXPECT_LE(d, hi + 1e-12);
  }
}

TEST(Box, BoundingUnion) {
  Box a({0.0, 0.0}, {1.0, 1.0});
  Box b({0.5, -2.0}, {3.0, 0.5});
  const Box u = Box::BoundingUnion(a, b);
  EXPECT_DOUBLE_EQ(u.lower()[0], 0.0);
  EXPECT_DOUBLE_EQ(u.lower()[1], -2.0);
  EXPECT_DOUBLE_EQ(u.upper()[0], 3.0);
  EXPECT_DOUBLE_EQ(u.upper()[1], 1.0);
}

TEST(Box, EntirelyCloserToMatchesBruteForceOverCorners) {
  // The extremum of the linear bisector expression is attained at a corner,
  // so checking all corners is an exact oracle.
  common::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> lo(3), hi(3), a(3), b(3);
    for (std::size_t j = 0; j < 3; ++j) {
      lo[j] = rng.Uniform(-2.0, 2.0);
      hi[j] = lo[j] + rng.Uniform(0.0, 1.5);
      a[j] = rng.Uniform(-3.0, 3.0);
      b[j] = rng.Uniform(-3.0, 3.0);
    }
    Box box(lo, hi);
    bool oracle = true;
    for (int corner = 0; corner < 8; ++corner) {
      std::vector<double> x(3);
      for (std::size_t j = 0; j < 3; ++j) {
        x[j] = (corner >> j) & 1 ? hi[j] : lo[j];
      }
      double da = 0.0, db = 0.0;
      for (std::size_t j = 0; j < 3; ++j) {
        da += (x[j] - a[j]) * (x[j] - a[j]);
        db += (x[j] - b[j]) * (x[j] - b[j]);
      }
      if (da > db) {
        oracle = false;
        break;
      }
    }
    EXPECT_EQ(box.EntirelyCloserTo(a, b), oracle) << "trial " << trial;
  }
}

TEST(UncertainObject, AggregatesPerDimensionMoments) {
  const UncertainObject o = MakeObject2D(1.0, 0.5, -2.0, 1.0);
  ASSERT_EQ(o.dims(), 2u);
  EXPECT_DOUBLE_EQ(o.mean()[0], 1.0);
  EXPECT_DOUBLE_EQ(o.mean()[1], -2.0);
  EXPECT_DOUBLE_EQ(o.variance()[0], o.pdf(0).variance());
  EXPECT_DOUBLE_EQ(o.variance()[1], o.pdf(1).variance());
  EXPECT_NEAR(o.total_variance(), o.variance()[0] + o.variance()[1], 1e-15);
  EXPECT_DOUBLE_EQ(o.second_moment()[0], o.pdf(0).second_moment());
}

TEST(UncertainObject, RegionIsProductOfSupports) {
  const UncertainObject o = MakeObject2D(0.0, 1.0, 5.0, 2.0);
  const Box& r = o.region();
  EXPECT_DOUBLE_EQ(r.lower()[0], o.pdf(0).lower());
  EXPECT_DOUBLE_EQ(r.upper()[1], o.pdf(1).upper());
}

TEST(UncertainObject, DeterministicFactoryHasZeroVariance) {
  const std::vector<double> p{1.0, 2.0, 3.0};
  const UncertainObject o = UncertainObject::Deterministic(p);
  EXPECT_EQ(o.dims(), 3u);
  EXPECT_DOUBLE_EQ(o.total_variance(), 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(o.mean()[j], p[j]);
  }
  common::Rng rng(1);
  EXPECT_EQ(o.Sample(&rng), p);
}

TEST(UncertainObject, SamplesStayInRegion) {
  const UncertainObject o = MakeObject2D(0.0, 1.0, 10.0, 0.1);
  common::Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto x = o.Sample(&rng);
    EXPECT_TRUE(o.region().Contains(x));
  }
}

TEST(UncertainObject, CopySharesPdfs) {
  const UncertainObject a = MakeObject2D(0.0, 1.0, 0.0, 1.0);
  const UncertainObject b = a;  // NOLINT: copy on purpose
  EXPECT_EQ(&a.pdf(0), &b.pdf(0));
  EXPECT_EQ(a.mean(), b.mean());
}

TEST(MomentMatrix, PacksObjectsFaithfully) {
  std::vector<UncertainObject> objs;
  objs.push_back(MakeObject2D(1.0, 0.5, 2.0, 0.25));
  objs.push_back(MakeObject2D(-1.0, 2.0, 0.0, 1.0));
  const MomentMatrix mm = MomentMatrix::FromObjects(objs);
  ASSERT_EQ(mm.size(), 2u);
  ASSERT_EQ(mm.dims(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(mm.mean(i)[j], objs[i].mean()[j]);
      EXPECT_DOUBLE_EQ(mm.second_moment(i)[j], objs[i].second_moment()[j]);
      EXPECT_DOUBLE_EQ(mm.variance(i)[j], objs[i].variance()[j]);
    }
    EXPECT_NEAR(mm.total_variance(i), objs[i].total_variance(), 1e-15);
  }
}

TEST(MomentMatrix, AppendRowsDirectly) {
  MomentMatrix mm(2, 3);
  const std::vector<double> mean{1.0, 2.0, 3.0};
  const std::vector<double> mu2{2.0, 5.0, 10.0};
  const std::vector<double> var{1.0, 1.0, 1.0};
  mm.AppendRow(mean, mu2, var);
  ASSERT_EQ(mm.size(), 1u);
  EXPECT_DOUBLE_EQ(mm.total_variance(0), 3.0);
  EXPECT_DOUBLE_EQ(mm.mean(0)[2], 3.0);
}

TEST(SampleStore, ShapesAndDeterminism) {
  std::vector<UncertainObject> objs;
  objs.push_back(MakeObject2D(0.0, 1.0, 0.0, 1.0));
  objs.push_back(MakeObject2D(5.0, 0.5, -5.0, 0.5));
  const ResidentSampleStore sa(objs, 16, 99);
  const ResidentSampleStore sb(objs, 16, 99);
  const SampleView a = sa.view();
  const SampleView b = sb.view();
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.samples_per_object(), 16);
  EXPECT_EQ(a.dims(), 2u);
  for (int s = 0; s < 16; ++s) {
    EXPECT_EQ(std::vector<double>(a.SampleOf(1, s).begin(),
                                  a.SampleOf(1, s).end()),
              std::vector<double>(b.SampleOf(1, s).begin(),
                                  b.SampleOf(1, s).end()));
  }
}

TEST(SampleStore, SamplesInsideRegions) {
  std::vector<UncertainObject> objs;
  objs.push_back(MakeObject2D(0.0, 2.0, 1.0, 0.5));
  const ResidentSampleStore store(objs, 64, 7);
  const SampleView cache = store.view();
  for (int s = 0; s < 64; ++s) {
    EXPECT_TRUE(objs[0].region().Contains(cache.SampleOf(0, s)));
  }
}

TEST(SampleStore, ExpectedDistanceEstimatorConverges) {
  std::vector<UncertainObject> objs;
  objs.push_back(MakeObject2D(1.0, 0.5, -1.0, 0.5));
  const ResidentSampleStore store(objs, 4096, 3);
  const SampleView cache = store.view();
  const std::vector<double> y{0.0, 0.0};
  const double est = cache.ExpectedSquaredDistanceToPoint(0, y);
  // Closed form: sigma^2(o) + ||mu - y||^2.
  const double exact = objs[0].total_variance() + 2.0;
  EXPECT_NEAR(est, exact, 0.05);
}

TEST(SampleStore, DistanceProbabilityEndpoints) {
  std::vector<UncertainObject> objs;
  objs.push_back(MakeObject2D(0.0, 0.1, 0.0, 0.1));
  objs.push_back(MakeObject2D(0.0, 0.1, 0.0, 0.1));
  objs.push_back(MakeObject2D(100.0, 0.1, 100.0, 0.1));
  const ResidentSampleStore store(objs, 32, 5);
  const SampleView cache = store.view();
  // Near-identical objects: always within a huge radius.
  EXPECT_DOUBLE_EQ(cache.DistanceProbability(0, 1, 10.0), 1.0);
  // Distant object: never within a small radius.
  EXPECT_DOUBLE_EQ(cache.DistanceProbability(0, 2, 1.0), 0.0);
}

}  // namespace
}  // namespace uclust::uncertain
