// dataset_gen: writes a synthetic uncertain dataset straight to the binary
// dataset format (see src/io/binary_format.h) in one bounded-memory pass —
// every object is generated from its own rng sub-stream and serialized
// immediately, so arbitrarily large n fits in O(classes * m) working memory.
//
// The generator mirrors the paper's protocol: a labeled Gaussian mixture in
// the unit cube provides the deterministic centers w, and each (object,
// dimension) gets a pdf with expected value w and a randomly drawn scale
// (Section 5.1). Families: uniform / normal / exponential (the paper's
// three), discrete (weighted point masses), or "mix" cycling through all
// four.
//
// Flags:
//   --out=PATH        output file                      (required)
//   --n=N             objects                          (default 10000)
//   --m=M             dimensions                       (default 8)
//   --classes=C       mixture components / classes     (default 4)
//   --family=F        uniform|normal|exponential|discrete|mix
//                                                      (default normal)
//   --min_scale_frac=X  min pdf scale, fraction of the unit range
//                                                      (default 0.02)
//   --max_scale_frac=X  max pdf scale                  (default 0.10)
//   --sigma_min=X     min per-dim class stddev         (default 0.04)
//   --sigma_max=X     max per-dim class stddev         (default 0.09)
//   --min_separation=X  min pairwise center distance   (default 0.25)
//   --name=S          dataset name stored in the file  (default "synthetic")
//   --seed=S          master seed                      (default 1)
//   --emit-moments=PATH.umom  also build the moment sidecar for the written
//                     dataset in a second bounded-memory pass, so bench runs
//                     on the Mapped moment backend can reuse it instead of
//                     re-ingesting (see src/io/moment_file.h)
//   --moment_chunk_rows=R     sidecar chunk rows (rounded up to a power of
//                     two; 0 = format default)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "data/uncertainty_model.h"
#include "io/dataset_writer.h"
#include "io/ingest.h"
#include "uncertain/discrete_pdf.h"
#include "uncertain/uncertain_object.h"

namespace {

using namespace uclust;  // NOLINT: tool brevity

// Family selector covering the tool's extra options beyond PdfFamily.
enum class GenFamily { kUniform, kNormal, kExponential, kDiscrete, kMix };

bool ParseGenFamily(const std::string& text, GenFamily* out) {
  if (text == "uniform") *out = GenFamily::kUniform;
  else if (text == "normal") *out = GenFamily::kNormal;
  else if (text == "exponential") *out = GenFamily::kExponential;
  else if (text == "discrete") *out = GenFamily::kDiscrete;
  else if (text == "mix") *out = GenFamily::kMix;
  else return false;
  return true;
}

// Discrete stand-in for MakeUncertainPdf: five point masses centered on w
// with half-spread sqrt(3)*scale (matching the uniform family's support).
uncertain::PdfPtr MakeDiscretePdf(double w, double scale, common::Rng* rng) {
  const double half = scale * std::sqrt(3.0);
  std::vector<double> values(5);
  for (double& v : values) v = w + rng->Uniform(-half, half);
  return uncertain::DiscretePdf::Uniformly(std::move(values));
}

// Mixture centers in the unit cube with pairwise distance >= min_sep,
// geometrically relaxed when rejection stalls (same scheme as
// data::MakeGaussianMixture).
std::vector<std::vector<double>> DrawCenters(std::size_t dims, int classes,
                                             double min_sep,
                                             common::Rng* rng) {
  std::vector<std::vector<double>> centers;
  double sep = min_sep;
  int stall = 0;
  while (static_cast<int>(centers.size()) < classes) {
    std::vector<double> c(dims);
    for (auto& x : c) x = rng->Uniform();
    bool ok = true;
    for (const auto& other : centers) {
      if (common::Distance(c, other) < sep) {
        ok = false;
        break;
      }
    }
    if (ok) {
      centers.push_back(std::move(c));
      stall = 0;
    } else if (++stall > 200) {
      sep *= 0.8;
      stall = 0;
    }
  }
  return centers;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string out_path = args.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "dataset_gen: --out=PATH is required\n");
    return 1;
  }
  const std::size_t n = static_cast<std::size_t>(args.GetInt("n", 10000));
  const std::size_t m = static_cast<std::size_t>(args.GetInt("m", 8));
  const int classes = static_cast<int>(args.GetInt("classes", 4));
  const double min_scale = args.GetDouble("min_scale_frac", 0.02);
  const double max_scale = args.GetDouble("max_scale_frac", 0.10);
  const double sigma_min = args.GetDouble("sigma_min", 0.04);
  const double sigma_max = args.GetDouble("sigma_max", 0.09);
  const double min_sep = args.GetDouble("min_separation", 0.25);
  const std::string name = args.GetString("name", "synthetic");
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  GenFamily family = GenFamily::kNormal;
  if (!ParseGenFamily(args.GetString("family", "normal"), &family)) {
    std::fprintf(stderr, "dataset_gen: unknown --family (want uniform, "
                         "normal, exponential, discrete, or mix)\n");
    return 1;
  }
  if (n == 0 || m == 0 || classes < 1 ||
      n < static_cast<std::size_t>(classes) || min_scale <= 0.0 ||
      min_scale > max_scale) {
    std::fprintf(stderr, "dataset_gen: invalid shape/scale parameters\n");
    return 1;
  }

  // Master stream: centers and per-class spreads only (O(classes * m)).
  common::Rng master(seed);
  const auto centers = DrawCenters(m, classes, min_sep, &master);
  std::vector<std::vector<double>> sigmas(classes);
  for (auto& s : sigmas) {
    s.resize(m);
    for (auto& x : s) x = master.Uniform(sigma_min, sigma_max);
  }

  io::BinaryDatasetWriter writer;
  common::Status st = writer.Open(out_path, m, name, classes,
                                  /*with_labels=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
    return 1;
  }

  static constexpr GenFamily kCycle[] = {
      GenFamily::kUniform, GenFamily::kNormal, GenFamily::kExponential,
      GenFamily::kDiscrete};
  std::vector<uncertain::PdfPtr> pdfs;
  for (std::size_t i = 0; i < n; ++i) {
    // Per-object sub-stream: the file contents are independent of any
    // generation order or batching.
    common::Rng rng(common::DeriveSeed(seed, i));
    const int c = static_cast<int>(rng.Index(static_cast<std::size_t>(classes)));
    const GenFamily fam =
        family == GenFamily::kMix ? kCycle[i % 4] : family;
    pdfs.clear();
    pdfs.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      const double w = rng.Normal(centers[c][j], sigmas[c][j]);
      const double scale = rng.Uniform(min_scale, max_scale);
      switch (fam) {
        case GenFamily::kUniform:
          pdfs.push_back(
              data::MakeUncertainPdf(data::PdfFamily::kUniform, w, scale));
          break;
        case GenFamily::kNormal:
          pdfs.push_back(
              data::MakeUncertainPdf(data::PdfFamily::kNormal, w, scale));
          break;
        case GenFamily::kExponential:
          pdfs.push_back(data::MakeUncertainPdf(data::PdfFamily::kExponential,
                                                w, scale));
          break;
        case GenFamily::kDiscrete:
          pdfs.push_back(MakeDiscretePdf(w, scale, &rng));
          break;
        case GenFamily::kMix:
          break;  // unreachable: fam is resolved above
      }
    }
    st = writer.Append(uncertain::UncertainObject(std::move(pdfs)), c);
    if (!st.ok()) {
      std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  st = writer.Finish();
  if (!st.ok()) {
    std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("[dataset_gen] wrote n=%zu m=%zu classes=%d family=%s -> %s\n",
              n, m, classes, args.GetString("family", "normal").c_str(),
              out_path.c_str());

  // Optional second pass: precompute the moment sidecar once so Mapped-
  // backend bench runs skip ingestion entirely (they reuse the sidecar via
  // its n/m/source-size staleness guard).
  const std::string moments_path = args.GetString("emit-moments", "");
  if (!moments_path.empty()) {
    const std::size_t chunk_rows =
        static_cast<std::size_t>(args.GetInt("moment_chunk_rows", 0));
    st = io::BuildMomentSidecar(out_path, moments_path,
                                engine::Engine::Serial(), chunk_rows);
    if (!st.ok()) {
      std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("[dataset_gen] wrote moment sidecar -> %s\n",
                moments_path.c_str());
  }
  return 0;
}
