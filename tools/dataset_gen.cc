// dataset_gen: writes a synthetic uncertain dataset straight to the binary
// dataset format (see src/io/binary_format.h) in one bounded-memory pass —
// every object is generated from its own rng sub-stream and serialized
// immediately, so arbitrarily large n fits in O(classes * m) working memory.
//
// The generator core lives in src/data/synthetic_gen.h (the paper's
// Section 5.1 protocol: labeled Gaussian-mixture centers in the unit cube,
// per-dimension pdfs with randomly drawn scales); this tool is a thin flag
// wrapper around it. Equal flags — in particular equal --seed — produce
// byte-identical output files (tests/test_dataset_gen.cc pins this through
// the shared core).
//
// Flags:
//   --out=PATH        output file                      (required)
//   --n=N             objects                          (default 10000)
//   --m=M             dimensions                       (default 8)
//   --classes=C       mixture components / classes     (default 4)
//   --family=F        uniform|normal|exponential|discrete|mix
//                                                      (default normal)
//   --min_scale_frac=X  min pdf scale, fraction of the unit range
//                                                      (default 0.02)
//   --max_scale_frac=X  max pdf scale                  (default 0.10)
//   --sigma_min=X     min per-dim class stddev         (default 0.04)
//   --sigma_max=X     max per-dim class stddev         (default 0.09)
//   --min_separation=X  min pairwise center distance   (default 0.25)
//   --name=S          dataset name stored in the file  (default "synthetic")
//   --seed=S          master seed                      (default 1)
//   --emit-moments=PATH.umom  also build the moment sidecar for the written
//                     dataset in a second bounded-memory pass, so bench runs
//                     on the Mapped moment backend can reuse it instead of
//                     re-ingesting (see src/io/moment_file.h)
//   --emit-samples=PATH.usmp  also build the Monte-Carlo sample sidecar
//                     (S realizations per object, drawn through the
//                     canonical uncertain::DrawObjectSamples sub-streams) in
//                     a bounded-memory pass, so Mapped-sample-backend runs
//                     reuse it instead of spilling (see src/io/sample_file.h)
//   --samples_per_object=S    realizations per object      (default 32)
//   --sample_seed=S   master draw seed for --emit-samples
//                                                    (default 0x5eedbeef)
//                     Reuse is keyed on (samples_per_object, seed), and each
//                     sampled algorithm has its own default sample_seed:
//                     UK-medoids 0x5eedbeef (this flag's default), FDBSCAN
//                     0x5eedf00d, FOPTICS 0x5eedfade, basic UK-means
//                     0x5eedcafe. Emit one sidecar per target seed (or run
//                     the clusterer with a matching --sample_seed); a
//                     mismatched sidecar is never reused — the run falls
//                     back to its own param-encoded sibling file.
//
// Engine knobs (--threads, --moment_chunk_rows, --sample_chunk_rows, ...)
// are parsed strictly through the canonical common::ParseEngineFlags table
// and drive the sidecar passes: the chunk-rows knobs set the respective
// sidecar chunk rows (rounded up to a power of two; 0 = format default) and
// --threads parallelizes the packing/drawing.
//
// Equal flags produce byte-identical sidecars too: the sample bytes for
// object i are a pure function of (pdf records, sample seed, i, S), never
// of thread count or batch boundaries (tests/test_dataset_gen.cc).
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "data/synthetic_gen.h"
#include "engine/engine.h"
#include "io/ingest.h"
#include "io/sample_file.h"

namespace {

using namespace uclust;  // NOLINT: tool brevity

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::string out_path = args.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "dataset_gen: --out=PATH is required\n");
    return 1;
  }
  data::SyntheticGenParams params;
  params.n = static_cast<std::size_t>(args.GetInt("n", 10000));
  params.m = static_cast<std::size_t>(args.GetInt("m", 8));
  params.classes = static_cast<int>(args.GetInt("classes", 4));
  params.min_scale_frac = args.GetDouble("min_scale_frac", 0.02);
  params.max_scale_frac = args.GetDouble("max_scale_frac", 0.10);
  params.sigma_min = args.GetDouble("sigma_min", 0.04);
  params.sigma_max = args.GetDouble("sigma_max", 0.09);
  params.min_separation = args.GetDouble("min_separation", 0.25);
  params.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string name = args.GetString("name", "synthetic");
  if (!data::ParseGenFamily(args.GetString("family", "normal"),
                            &params.family)) {
    std::fprintf(stderr, "dataset_gen: unknown --family (want uniform, "
                         "normal, exponential, discrete, or mix)\n");
    return 1;
  }
  engine::EngineConfig engine_cfg;
  common::Status st = common::ParseEngineFlags(args, &engine_cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
    return 1;
  }

  st = data::ValidateSyntheticGenParams(params);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset_gen: invalid shape/scale parameters\n");
    return 1;
  }

  st = data::WriteSyntheticDataset(params, out_path, name);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "[dataset_gen] wrote n=%zu m=%zu classes=%d family=%s seed=%llu -> %s\n",
      params.n, params.m, params.classes, data::GenFamilyName(params.family),
      static_cast<unsigned long long>(params.seed), out_path.c_str());

  // Optional second pass: precompute the moment sidecar once so Mapped-
  // backend bench runs skip ingestion entirely (they reuse the sidecar via
  // its n/m/source-size staleness guard).
  const std::string moments_path = args.GetString("emit-moments", "");
  if (!moments_path.empty()) {
    st = io::BuildMomentSidecar(out_path, moments_path,
                                engine::Engine(engine_cfg),
                                engine_cfg.moment_chunk_rows);
    if (!st.ok()) {
      std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("[dataset_gen] wrote moment sidecar -> %s\n",
                moments_path.c_str());
  }

  // Optional third pass: precompute the .usmp sample sidecar so sampled
  // clusterers on the Mapped sample backend reuse it (matched via the
  // n/m/S/seed/source staleness guard) instead of re-drawing into a spill.
  const std::string samples_path = args.GetString("emit-samples", "");
  if (!samples_path.empty()) {
    const int samples_per_object =
        static_cast<int>(args.GetInt("samples_per_object", 32));
    const uint64_t sample_seed = static_cast<uint64_t>(
        args.GetInt("sample_seed", 0x5eedbeefLL));
    st = io::BuildSampleSidecar(out_path, samples_path, samples_per_object,
                                sample_seed, engine::Engine(engine_cfg),
                                engine_cfg.sample_chunk_rows);
    if (!st.ok()) {
      std::fprintf(stderr, "dataset_gen: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf(
        "[dataset_gen] wrote sample sidecar S=%d sample_seed=%llu -> %s\n",
        samples_per_object, static_cast<unsigned long long>(sample_seed),
        samples_path.c_str());
  }
  return 0;
}
