// serve: the long-lived clustering service. Hosts the versioned REST API
// of service::ClusteringService (see docs/service.md for the route table,
// job lifecycle, and budget semantics) on a loopback-default listener:
//
//   serve --port=8080 --executors=2 --global_budget_mb=256
//   curl -s -X POST localhost:8080/v1/datasets -d '{"path": "data.ubin"}'
//   curl -s -X POST localhost:8080/v1/jobs \
//        -d '{"dataset_id": "ds-1", "algorithm": "CK-means", "k": 8}'
//   curl -s localhost:8080/v1/jobs/j-1/result
//
// Flags:
//   --port=N              listen port; 0 = ephemeral       (default 8080)
//   --bind=ADDR           bind address                     (default 127.0.0.1)
//   --http_workers=N      HTTP worker threads              (default 4)
//   --executors=N         concurrent job lanes             (default 2)
//   --queue_capacity=N    max queued jobs                  (default 32)
//   --global_budget_mb=N  admission-control memory pool;
//                         0 = unlimited                    (default 0)
//   --register=PATH       pre-register one dataset at boot
//   --register_moments=PATH.umom   its optional moment sidecar
//   --register_samples=PATH.usmp   its optional sample sidecar
//
// Prints `SERVE LISTENING port=<port>` once routable (CI and scripts parse
// it — with --port=0 this is the only way to learn the bound port), then
// runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/cli.h"
#include "service/service.h"

namespace {

using namespace uclust;  // NOLINT: tool brevity

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);

  service::ServiceConfig cfg;
  cfg.http.port = static_cast<int>(args.GetInt("port", 8080));
  cfg.http.bind_address = args.GetString("bind", "127.0.0.1");
  cfg.http.worker_threads =
      static_cast<std::size_t>(args.GetInt("http_workers", 4));
  cfg.jobs.executors = static_cast<int>(args.GetInt("executors", 2));
  cfg.jobs.queue_capacity =
      static_cast<std::size_t>(args.GetInt("queue_capacity", 32));
  cfg.jobs.global_budget_bytes =
      static_cast<std::size_t>(args.GetInt("global_budget_mb", 0)) * 1024 *
      1024;

  service::ClusteringService svc(std::move(cfg));

  const std::string preregister = args.GetString("register", "");
  if (!preregister.empty()) {
    common::Result<service::DatasetInfo> info = svc.registry().Register(
        preregister, args.GetString("register_moments", ""),
        args.GetString("register_samples", ""));
    if (!info.ok()) {
      std::fprintf(stderr, "serve: %s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("[serve] registered %s -> %s (n=%zu m=%zu)\n",
                preregister.c_str(), info.ValueOrDie().id.c_str(),
                info.ValueOrDie().n, info.ValueOrDie().m);
  }

  common::Status st = svc.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("SERVE LISTENING port=%d\n", svc.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }
  std::printf("[serve] shutting down\n");
  svc.Stop();
  return 0;
}
